//! The engine facade: SQL execution and programmatic table access.

use crate::catalog::Catalog;
use crate::column::ColumnVector;
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::exec::parallel;
use crate::exec::physical::{build_operator, ExecContext, Operator};
use crate::exec::scan::ScanExec;
use crate::exec::simple::concat_batches;
use crate::plan::binder::Binder;
use crate::plan::logical::LogicalPlan;
use crate::plan::optimizer::Optimizer;
use crate::sql::{parse_statement, Statement};
use crate::storage::{ColumnDef, Schema, Table};
use crate::types::{DataType, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A materialized query result.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Output column names.
    pub names: Vec<String>,
    /// Output columns (equal length).
    pub columns: Vec<ColumnVector>,
    /// Rows affected by DML/DDL (0 for queries).
    pub affected: usize,
}

impl QueryResult {
    fn empty(affected: usize) -> QueryResult {
        QueryResult { names: Vec::new(), columns: Vec::new(), affected }
    }

    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnVector::len)
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by output name (case-insensitive); errors if absent.
    pub fn column(&self, name: &str) -> Result<&ColumnVector> {
        let lower = name.to_ascii_lowercase();
        self.names
            .iter()
            .position(|n| *n == lower)
            .map(|i| &self.columns[i])
            .ok_or_else(|| EngineError::Plan(format!("no result column {name:?}")))
    }

    /// Row `i` as values (tests / display).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// All rows (tests).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.num_rows()).map(|i| self.row(i)).collect()
    }
}

/// One cached, fully optimized SELECT plan, stamped with the catalog epoch
/// it was planned under.
struct PlanEntry {
    /// Catalog epoch at planning time; the entry is replayed only while
    /// `catalog.version()` still equals it.
    version: u64,
    plan: Arc<LogicalPlan>,
    /// LRU tick of the last lookup that returned this entry.
    last_used: u64,
}

/// The prepared-statement / plan cache behind [`Engine::execute_cached`]:
/// SQL text → optimized [`LogicalPlan`], invalidated by catalog epoch.
#[derive(Default)]
struct PlanCache {
    entries: HashMap<String, PlanEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Counters of the plan cache (observability / tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch (including never-seen SQL).
    pub misses: u64,
    /// Entries discarded because the catalog epoch had moved.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl PlanCache {
    /// A valid entry for `sql` at catalog epoch `version`, else `None`.
    /// Stale entries are evicted (and counted) on the way.
    fn lookup(&mut self, sql: &str, version: u64) -> Option<Arc<LogicalPlan>> {
        match self.entries.get_mut(sql) {
            Some(entry) if entry.version == version => {
                self.tick += 1;
                entry.last_used = self.tick;
                self.hits += 1;
                obs::metrics::EXEC_PLAN_CACHE_HITS.add(1);
                Some(Arc::clone(&entry.plan))
            }
            Some(_) => {
                self.entries.remove(sql);
                self.invalidations += 1;
                self.misses += 1;
                obs::metrics::EXEC_PLAN_CACHE_INVALIDATIONS.add(1);
                obs::metrics::EXEC_PLAN_CACHE_MISSES.add(1);
                None
            }
            None => {
                self.misses += 1;
                obs::metrics::EXEC_PLAN_CACHE_MISSES.add(1);
                None
            }
        }
    }

    /// Insert a freshly planned entry, evicting the least-recently-used one
    /// when at capacity. Capacity is small (an `EngineConfig` knob), so the
    /// O(n) eviction scan is noise next to planning cost.
    fn store(&mut self, capacity: usize, sql: &str, version: u64, plan: Arc<LogicalPlan>) {
        if capacity == 0 {
            return;
        }
        if self.entries.len() >= capacity && !self.entries.contains_key(sql) {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.tick += 1;
        self.entries.insert(sql.to_string(), PlanEntry { version, plan, last_used: self.tick });
    }
}

/// The database engine: a catalog plus a configuration. This is the
/// "Actian Vector" stand-in every approach in the repository runs against.
pub struct Engine {
    catalog: Arc<Catalog>,
    config: EngineConfig,
    plan_cache: Mutex<PlanCache>,
}

impl Engine {
    /// Construct an engine, panicking if persistent-storage open or
    /// crash recovery fails. Kept infallible for the (default) in-memory
    /// mode, where it cannot fail; persistent callers who want to handle
    /// recovery errors use [`Engine::open`].
    pub fn new(config: EngineConfig) -> Engine {
        Engine::open(config).expect("persistent storage open/recovery failed")
    }

    /// Construct an engine. With [`EngineConfig::data_dir`] set, this
    /// opens (or creates) the paged storage under that directory and
    /// runs crash recovery: the checkpointed page directory is loaded
    /// and the WAL's committed prefix replayed, so the returned engine
    /// is bit-identical to one that executed exactly the committed
    /// statement prefix before the crash.
    pub fn open(config: EngineConfig) -> Result<Engine> {
        // The span gate is process-global (metrics are process-wide, see
        // the obs crate docs); the last engine constructed wins.
        obs::set_spans_enabled(config.obs_spans);
        if config.unified_sched {
            // Size the process-wide scheduler (grow-only) for this
            // engine's workload; every compute layer shares the pool.
            sched::configure_workers(config.effective_worker_threads());
        }
        let catalog = match &config.data_dir {
            None => Arc::new(Catalog::new()),
            Some(dir) => crate::persist::open_catalog(std::path::Path::new(dir), &config)?,
        };
        Ok(Engine { catalog, config, plan_cache: Mutex::new(PlanCache::default()) })
    }

    /// Checkpoint the persistent storage: flush dirty pool pages, write
    /// the page directory atomically, truncate the WAL. A no-op for
    /// in-memory engines.
    pub fn checkpoint(&self) -> Result<()> {
        crate::persist::checkpoint(&self.catalog)
    }

    /// Rebuild the data file, copying only live chunks and truncating
    /// away dead pages (dropped tables, crash-torn appends). Runs under
    /// the checkpoint lock; errors if a transaction is open. A no-op for
    /// in-memory engines.
    pub fn vacuum(&self) -> Result<()> {
        crate::persist::vacuum(&self.catalog)
    }

    /// Current WAL size in bytes (`None` in in-memory mode). The
    /// crash-recovery tests record this after each statement to build
    /// their committed-prefix oracle.
    pub fn wal_size(&self) -> Option<u64> {
        self.catalog.env().map(|e| e.wal_size())
    }

    /// The persistent storage environment (`None` in in-memory mode) —
    /// tests and benchmarks read buffer-pool occupancy through it.
    pub fn storage_env(&self) -> Option<&Arc<crate::persist::StorageEnv>> {
        self.catalog.env()
    }

    /// Engine with the paper's evaluation configuration.
    pub fn with_defaults() -> Engine {
        Engine::new(EngineConfig::default())
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_statement(parse_statement(sql)?)
    }

    /// Execute one SQL statement through the plan cache: SELECTs are
    /// parsed, bound and optimized once and the resulting plan replayed on
    /// every later call with the same SQL text, until any catalog change
    /// (CREATE / DROP / INSERT) moves the epoch and invalidates the entry.
    /// Non-SELECT statements are never cached and behave exactly like
    /// [`Engine::execute`]. With `plan_cache_entries == 0` this *is*
    /// `execute`.
    pub fn execute_cached(&self, sql: &str) -> Result<QueryResult> {
        if self.config.plan_cache_entries == 0 {
            return self.execute(sql);
        }
        // The epoch is read before planning: if the catalog moves while we
        // plan, the entry is stamped with the older epoch and can never be
        // returned by a later lookup (epochs are monotonic) — a wasted
        // cache slot, never a stale result.
        let version = self.catalog.version();
        if let Some(plan) = self.plan_cache.lock().lookup(sql, version) {
            return self.execute_plan(&plan);
        }
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let binder = Binder::new(&self.catalog);
                let plan = binder.bind_select(&stmt)?;
                let plan = Arc::new(Optimizer::new(self.config.clone()).optimize(plan));
                self.plan_cache.lock().store(
                    self.config.plan_cache_entries,
                    sql,
                    version,
                    Arc::clone(&plan),
                );
                self.execute_plan(&plan)
            }
            other => self.execute_statement(other),
        }
    }

    /// Text report of the process-wide metric catalog (see the `obs`
    /// crate): per-operator rows/batches/time, plan-cache and catalog
    /// counters, kernel-layer GEMM/pack stats, and (when a server runs in
    /// this process) the serving metrics.
    pub fn metrics_report(&self) -> String {
        obs::snapshot().render()
    }

    /// Plan cache counters (hits / misses / invalidations / residency).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let cache = self.plan_cache.lock();
        PlanCacheStats {
            hits: cache.hits,
            misses: cache.misses,
            invalidations: cache.invalidations,
            entries: cache.entries.len(),
        }
    }

    fn execute_statement(&self, statement: Statement) -> Result<QueryResult> {
        match statement {
            Statement::Select(stmt) => {
                let binder = Binder::new(&self.catalog);
                let plan = binder.bind_select(&stmt)?;
                let plan = Optimizer::new(self.config.clone()).optimize(plan);
                self.execute_plan(&plan)
            }
            Statement::CreateTable { name, columns, if_not_exists } => {
                if if_not_exists && self.catalog.table(&name).is_ok() {
                    return Ok(QueryResult::empty(0));
                }
                let defs: Result<Vec<ColumnDef>> = columns
                    .iter()
                    .map(|(n, t)| Ok(ColumnDef::new(n.as_str(), DataType::parse_sql(t)?)))
                    .collect();
                self.catalog.create_table(&name, Schema::new(defs?)?, &self.config)?;
                Ok(QueryResult::empty(0))
            }
            Statement::Insert { table, columns, rows } => {
                let t = self.catalog.table(&table)?;
                let binder = Binder::new(&self.catalog);
                let mut value_rows = Vec::with_capacity(rows.len());
                for row in &rows {
                    let values: Result<Vec<Value>> =
                        row.iter().map(|e| binder.eval_const(e)).collect();
                    value_rows.push(values?);
                }
                let value_rows = match &columns {
                    None => value_rows,
                    Some(cols) => reorder_insert(&t, cols, value_rows)?,
                };
                let n = value_rows.len();
                t.append_rows(&value_rows)?;
                Ok(QueryResult::empty(n))
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(&name, if_exists)?;
                Ok(QueryResult::empty(0))
            }
            Statement::Begin => {
                self.catalog.begin_transaction()?;
                Ok(QueryResult::empty(0))
            }
            Statement::Commit => {
                self.catalog.commit_transaction()?;
                Ok(QueryResult::empty(0))
            }
            Statement::Rollback => {
                self.catalog.rollback_transaction()?;
                Ok(QueryResult::empty(0))
            }
            Statement::Vacuum => {
                self.vacuum()?;
                Ok(QueryResult::empty(0))
            }
        }
    }

    /// Plan a SELECT without executing it (inspection / tests).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        match parse_statement(sql)? {
            Statement::Select(stmt) => {
                let binder = Binder::new(&self.catalog);
                let plan = binder.bind_select(&stmt)?;
                Ok(Optimizer::new(self.config.clone()).optimize(plan))
            }
            other => Err(EngineError::Plan(format!("cannot plan non-SELECT statement {other:?}"))),
        }
    }

    /// Execute an already-optimized logical plan.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<QueryResult> {
        let batches = parallel::execute(plan, &self.config)?;
        let all = concat_batches(&batches);
        let names = plan.schema().fields.iter().map(|f| f.name.clone()).collect();
        Ok(QueryResult { names, columns: all.into_columns(), affected: 0 })
    }

    /// Create a table programmatically.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        self.catalog.create_table(name, schema, &self.config)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.catalog.table(name)
    }

    /// Bulk columnar load (the fast path the experiment loaders use).
    pub fn insert_columns(&self, table: &str, columns: Vec<ColumnVector>) -> Result<usize> {
        let t = self.catalog.table(table)?;
        let n = columns.first().map_or(0, ColumnVector::len);
        t.append(columns)?;
        Ok(n)
    }

    /// A raw scan operator over one partition of a table — the integration
    /// point for native operators like the ModelJoin, which sit on top of a
    /// partition's input flow (paper Fig. 5).
    pub fn scan_partition(&self, table: &str, partition: usize) -> Result<Box<dyn Operator>> {
        let t = self.catalog.table(table)?;
        if partition >= t.partition_count() {
            return Err(EngineError::Execution(format!(
                "partition {partition} out of range for table {table}"
            )));
        }
        Ok(Box::new(ScanExec::new(t, Vec::new(), Some(partition))))
    }

    /// A raw scan operator over a whole table.
    pub fn scan_table(&self, table: &str) -> Result<Box<dyn Operator>> {
        let t = self.catalog.table(table)?;
        Ok(Box::new(ScanExec::new(t, Vec::new(), None)))
    }

    /// Build a physical operator tree for a SELECT, leaving the driver to
    /// the caller (used by approaches that embed the engine).
    pub fn compile(&self, sql: &str) -> Result<Box<dyn Operator>> {
        let plan = self.plan(sql)?;
        build_operator(&plan, &ExecContext::from_config(&self.config))
    }
}

fn reorder_insert(
    table: &Table,
    cols: &[String],
    rows: Vec<Vec<Value>>,
) -> Result<Vec<Vec<Value>>> {
    let schema = table.schema();
    if cols.len() != schema.len() {
        return Err(EngineError::Catalog(format!(
            "INSERT column list must cover all {} columns (no NULL/default support)",
            schema.len()
        )));
    }
    let mut positions = Vec::with_capacity(cols.len());
    for c in cols {
        positions.push(
            schema
                .index_of(c)
                .ok_or_else(|| EngineError::Catalog(format!("unknown column {c:?} in INSERT")))?,
        );
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != positions.len() {
            return Err(EngineError::Catalog("INSERT row arity mismatch".into()));
        }
        let mut reordered = vec![Value::Int(0); row.len()];
        for (value, &pos) in row.into_iter().zip(&positions) {
            reordered[pos] = value;
        }
        out.push(reordered);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            vector_size: 4,
            partitions: 3,
            parallelism: 2,
            ..Default::default()
        })
    }

    #[test]
    fn ddl_dml_query_round_trip() {
        let e = engine();
        e.execute("CREATE TABLE t (id INT, v FLOAT)").unwrap();
        let r = e.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5), (3, 2.5)").unwrap();
        assert_eq!(r.affected, 3);
        let q = e.execute("SELECT id, v * 2 AS dbl FROM t WHERE id >= 2 ORDER BY id").unwrap();
        assert_eq!(q.names, vec!["id", "dbl"]);
        assert_eq!(
            q.rows(),
            vec![vec![Value::Int(2), Value::Float(3.0)], vec![Value::Int(3), Value::Float(5.0)],]
        );
    }

    #[test]
    fn insert_with_column_list_reorders() {
        let e = engine();
        e.execute("CREATE TABLE t (a INT, b FLOAT)").unwrap();
        e.execute("INSERT INTO t (b, a) VALUES (0.5, 7)").unwrap();
        let q = e.execute("SELECT a, b FROM t").unwrap();
        assert_eq!(q.rows(), vec![vec![Value::Int(7), Value::Float(0.5)]]);
    }

    #[test]
    fn insert_partial_columns_rejected() {
        let e = engine();
        e.execute("CREATE TABLE t (a INT, b FLOAT)").unwrap();
        assert!(e.execute("INSERT INTO t (a) VALUES (1)").is_err());
    }

    #[test]
    fn create_if_not_exists_and_drop() {
        let e = engine();
        e.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(e.execute("CREATE TABLE t (a INT)").is_err());
        e.execute("CREATE TABLE IF NOT EXISTS t (a INT)").unwrap();
        e.execute("DROP TABLE t").unwrap();
        assert!(e.execute("DROP TABLE t").is_err());
        e.execute("DROP TABLE IF EXISTS t").unwrap();
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let e = engine();
        e.execute("CREATE TABLE t (g INT, v FLOAT)").unwrap();
        e.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (1, 3.0)").unwrap();
        let q =
            e.execute("SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g ORDER BY g").unwrap();
        assert_eq!(
            q.rows(),
            vec![
                vec![Value::Int(1), Value::Float(4.0), Value::Int(2)],
                vec![Value::Int(2), Value::Float(2.0), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn join_via_comma_and_where() {
        let e = engine();
        e.execute("CREATE TABLE a (id INT)").unwrap();
        e.execute("CREATE TABLE b (id INT, w FLOAT)").unwrap();
        e.execute("INSERT INTO a VALUES (1), (2)").unwrap();
        e.execute("INSERT INTO b VALUES (2, 0.5), (3, 0.7)").unwrap();
        let q = e.execute("SELECT a.id, b.w FROM a, b WHERE a.id = b.id").unwrap();
        assert_eq!(q.rows(), vec![vec![Value::Int(2), Value::Float(0.5)]]);
    }

    #[test]
    fn case_and_scalar_functions() {
        let e = engine();
        e.execute("CREATE TABLE t (x FLOAT)").unwrap();
        e.execute("INSERT INTO t VALUES (-1.0), (0.0), (1.0)").unwrap();
        let q = e
            .execute(
                "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END AS s, \
                 SIGMOID(x) AS sg, RELU(x) AS r FROM t ORDER BY x",
            )
            .unwrap();
        assert_eq!(q.column("s").unwrap().value(0), Value::Str("neg".into()));
        assert_eq!(q.column("s").unwrap().value(1), Value::Str("zero".into()));
        assert_eq!(q.column("r").unwrap().value(2), Value::Float(1.0));
        let sg = q.column("sg").unwrap().as_float().unwrap();
        assert!((sg[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn select_without_from() {
        let e = engine();
        let q = e.execute("SELECT 1 + 1 AS two, 'x' AS s").unwrap();
        assert_eq!(q.rows(), vec![vec![Value::Int(2), Value::Str("x".into())]]);
    }

    #[test]
    fn nested_subqueries_execute() {
        let e = engine();
        e.execute("CREATE TABLE t (id INT, v FLOAT)").unwrap();
        e.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)").unwrap();
        let q = e
            .execute(
                "SELECT big.id FROM \
                 (SELECT id, v FROM (SELECT id, v * 10 AS v FROM t) AS x WHERE x.v > 15) AS big \
                 ORDER BY big.id",
            )
            .unwrap();
        assert_eq!(q.rows(), vec![vec![Value::Int(2)], vec![Value::Int(3)], vec![Value::Int(4)]]);
    }

    #[test]
    fn result_column_lookup_errors() {
        let e = engine();
        let q = e.execute("SELECT 1 AS one").unwrap();
        assert!(q.column("one").is_ok());
        assert!(q.column("two").is_err());
    }

    #[test]
    fn scan_partition_bounds_checked() {
        let e = engine();
        e.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(e.scan_partition("t", 99).is_err());
        assert!(e.scan_partition("t", 0).is_ok());
    }

    #[test]
    fn plan_cache_replays_selects() {
        let e = engine();
        e.execute("CREATE TABLE t (id INT)").unwrap();
        e.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let sql = "SELECT id FROM t ORDER BY id";
        let a = e.execute_cached(sql).unwrap();
        let b = e.execute_cached(sql).unwrap();
        assert_eq!(a.rows(), b.rows());
        let stats = e.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn plan_cache_invalidated_by_insert_and_sees_new_rows() {
        let e = engine();
        e.execute("CREATE TABLE t (id INT)").unwrap();
        e.execute("INSERT INTO t VALUES (1)").unwrap();
        let sql = "SELECT COUNT(*) AS n FROM t";
        assert_eq!(e.execute_cached(sql).unwrap().rows(), vec![vec![Value::Int(1)]]);
        e.execute_cached("INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(e.execute_cached(sql).unwrap().rows(), vec![vec![Value::Int(2)]]);
        assert_eq!(e.plan_cache_stats().invalidations, 1);
    }

    #[test]
    fn plan_cache_never_reads_dropped_tables() {
        let e = engine();
        e.execute("CREATE TABLE t (id INT)").unwrap();
        e.execute("INSERT INTO t VALUES (7)").unwrap();
        let sql = "SELECT id FROM t";
        assert_eq!(e.execute_cached(sql).unwrap().num_rows(), 1);
        e.execute("DROP TABLE t").unwrap();
        // The cached plan still holds the old table alive via Arc; the
        // epoch check must prevent it from ever being replayed.
        assert!(e.execute_cached(sql).is_err());
        // Recreate with different content: the cache must re-plan against
        // the new table, not resurrect the old plan.
        e.execute("CREATE TABLE t (id INT)").unwrap();
        e.execute("INSERT INTO t VALUES (8), (9)").unwrap();
        let q = e.execute_cached(sql).unwrap();
        assert_eq!(q.num_rows(), 2);
    }

    #[test]
    fn plan_cache_lru_eviction_and_disable() {
        let e = Engine::new(EngineConfig {
            vector_size: 4,
            partitions: 2,
            parallelism: 1,
            plan_cache_entries: 2,
            ..Default::default()
        });
        e.execute("CREATE TABLE t (id INT)").unwrap();
        e.execute("INSERT INTO t VALUES (1)").unwrap();
        for sql in ["SELECT id FROM t", "SELECT id + 1 AS a FROM t", "SELECT id + 2 AS b FROM t"] {
            e.execute_cached(sql).unwrap();
        }
        assert_eq!(e.plan_cache_stats().entries, 2, "capacity bound holds");

        let off = Engine::new(EngineConfig { plan_cache_entries: 0, ..EngineConfig::test_small() });
        off.execute("CREATE TABLE t (id INT)").unwrap();
        off.execute_cached("SELECT id FROM t").unwrap();
        off.execute_cached("SELECT id FROM t").unwrap();
        assert_eq!(off.plan_cache_stats(), PlanCacheStats::default(), "0 disables the cache");
    }
}
