//! Columnar block storage with small materialized aggregates.
//!
//! Each table is split into [`EngineConfig::partitions`] horizontal
//! partitions; each partition stores every column as a sequence of blocks of
//! at most `vector_size` values. Every block carries min/max small
//! materialized aggregates (SMAs, a.k.a. MinMax indexes / zone maps —
//! paper Sec. 4.4 and [Moerkotte, VLDB'98]) that scans use to skip whole
//! blocks under range predicates.

use crate::column::{Batch, ColumnVector};
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::persist::{self, PagedChunk, StorageEnv, TxnState, UndoRecord};
use crate::types::{DataType, Value};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// A column definition: name and type.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, dtype: DataType) -> ColumnDef {
        ColumnDef { name: name.into().to_ascii_lowercase(), dtype }
    }
}

/// An ordered list of column definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name == b.name {
                    return Err(EngineError::Catalog(format!(
                        "duplicate column name {:?}",
                        a.name
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    pub fn column(&self, i: usize) -> &ColumnDef {
        &self.columns[i]
    }
}

/// Where a block's values live: resident in memory (the in-memory
/// engine's only variant) or as a paged column chunk read back through
/// the buffer pool on demand.
#[derive(Clone, Debug)]
enum BlockData {
    Mem(ColumnVector),
    Paged(PagedChunk),
}

/// Min/max of a column vector (the block SMA).
fn minmax(data: &ColumnVector) -> (Value, Value) {
    assert!(!data.is_empty(), "blocks are never empty");
    let mut min = data.value(0);
    let mut max = data.value(0);
    for i in 1..data.len() {
        let v = data.value(i);
        if v.total_cmp(&min) == Ordering::Less {
            min = v.clone();
        }
        if v.total_cmp(&max) == Ordering::Greater {
            max = v;
        }
    }
    (min, max)
}

/// One storage block: up to `vector_size` values of one column plus its
/// min/max SMA. SMAs always stay in memory (pruning must not fault
/// pages in); the values themselves may be paged out.
#[derive(Clone, Debug)]
pub struct Block {
    data: BlockData,
    min: Value,
    max: Value,
}

/// Checkpoint-time description of one paged block (chunk location plus
/// its SMA), the unit the page directory stores.
#[derive(Clone, Debug)]
pub(crate) struct BlockMeta {
    pub(crate) chunk: PagedChunk,
    pub(crate) min: Value,
    pub(crate) max: Value,
}

/// Checkpoint-time description of one partition.
pub(crate) struct PartitionMeta {
    pub(crate) rows: usize,
    /// `columns[c]` lists column `c`'s blocks in order.
    pub(crate) columns: Vec<Vec<BlockMeta>>,
}

impl Block {
    fn new(data: ColumnVector) -> Block {
        let (min, max) = minmax(&data);
        Block { data: BlockData::Mem(data), min, max }
    }

    fn paged(chunk: PagedChunk, min: Value, max: Value) -> Block {
        Block { data: BlockData::Paged(chunk), min, max }
    }

    /// Materialize the block's values, reading through the buffer pool
    /// when paged.
    pub fn load(&self, env: Option<&StorageEnv>) -> Result<ColumnVector> {
        match &self.data {
            BlockData::Mem(v) => Ok(v.clone()),
            BlockData::Paged(chunk) => {
                let env = env.ok_or_else(|| {
                    EngineError::Io("paged block read without a storage environment".into())
                })?;
                let bytes = env.read_chunk(chunk)?;
                let mut r = persist::Reader::new(&bytes);
                let col = persist::decode_column(&mut r)?;
                if col.len() != chunk.rows as usize {
                    return Err(EngineError::Io(format!(
                        "chunk at page {} decoded {} rows, directory says {}",
                        chunk.first_page,
                        col.len(),
                        chunk.rows
                    )));
                }
                Ok(col)
            }
        }
    }

    pub fn min(&self) -> &Value {
        &self.min
    }

    pub fn max(&self) -> &Value {
        &self.max
    }

    pub fn len(&self) -> usize {
        match &self.data {
            BlockData::Mem(v) => v.len(),
            BlockData::Paged(chunk) => chunk.rows as usize,
        }
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    fn byte_size(&self) -> usize {
        match &self.data {
            BlockData::Mem(v) => v.byte_size(),
            BlockData::Paged(chunk) => chunk.bytes as usize,
        }
    }

    fn meta(&self) -> Result<BlockMeta> {
        match &self.data {
            BlockData::Paged(chunk) => {
                Ok(BlockMeta { chunk: *chunk, min: self.min.clone(), max: self.max.clone() })
            }
            BlockData::Mem(_) => Err(EngineError::Io(
                "checkpoint found a memory-resident block in a persistent table".into(),
            )),
        }
    }

    /// The block's chunk location, if paged (vacuum relocates these).
    pub(crate) fn paged_chunk(&self) -> Option<PagedChunk> {
        match &self.data {
            BlockData::Paged(chunk) => Some(*chunk),
            BlockData::Mem(_) => None,
        }
    }

    /// Point the block at a relocated chunk (vacuum pass 2).
    pub(crate) fn set_paged_chunk(&mut self, chunk: PagedChunk) {
        self.data = BlockData::Paged(chunk);
    }
}

/// One horizontal partition: per column, the list of blocks. Row `i` of the
/// partition spans block `i / vector_size` across all columns.
#[derive(Debug, Default)]
pub struct Partition {
    /// `columns[c]` holds the blocks of column `c`.
    columns: Vec<Vec<Block>>,
    rows: usize,
}

impl Partition {
    fn new(width: usize) -> Partition {
        Partition { columns: vec![Vec::new(); width], rows: 0 }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn block_count(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// The `b`-th block of every column as a batch, reading paged blocks
    /// through the buffer pool.
    pub fn block_batch(&self, b: usize, env: Option<&StorageEnv>) -> Result<Batch> {
        let columns: Result<Vec<ColumnVector>> =
            self.columns.iter().map(|col| col[b].load(env)).collect();
        Ok(Batch::new(columns?))
    }

    /// SMA of column `c` in block `b`.
    pub fn sma(&self, c: usize, b: usize) -> (&Value, &Value) {
        let blk = &self.columns[c][b];
        (&blk.min, &blk.max)
    }

    fn append_chunk(&mut self, chunk: &[ColumnVector]) {
        debug_assert_eq!(chunk.len(), self.columns.len());
        for (col, vec) in self.columns.iter_mut().zip(chunk) {
            col.push(Block::new(vec.clone()));
        }
        self.rows += chunk.first().map_or(0, ColumnVector::len);
    }

    /// Publish one already-paged chunk: one block per column, `rows` new
    /// rows.
    fn append_paged_chunk(&mut self, blocks: Vec<Block>, rows: usize) {
        debug_assert_eq!(blocks.len(), self.columns.len());
        for (col, block) in self.columns.iter_mut().zip(blocks) {
            col.push(block);
        }
        self.rows += rows;
    }

    /// Rebuild a partition from its checkpointed description.
    fn from_meta(meta: PartitionMeta) -> Partition {
        let columns = meta
            .columns
            .into_iter()
            .map(|blocks| blocks.into_iter().map(|m| Block::paged(m.chunk, m.min, m.max)).collect())
            .collect();
        Partition { columns, rows: meta.rows }
    }

    fn meta(&self) -> Result<PartitionMeta> {
        let columns: Result<Vec<Vec<BlockMeta>>> =
            self.columns.iter().map(|blocks| blocks.iter().map(Block::meta).collect()).collect();
        Ok(PartitionMeta { rows: self.rows, columns: columns? })
    }

    /// Per-column block lists (vacuum walks these under the exclusive
    /// partition lock).
    pub(crate) fn columns(&self) -> &[Vec<Block>] {
        &self.columns
    }

    pub(crate) fn columns_mut(&mut self) -> &mut [Vec<Block>] {
        &mut self.columns
    }

    /// Drop every block past `keep` in each column, resetting the row
    /// count to `rows` — rollback's per-partition truncation. Returns the
    /// page ids of the removed paged chunks.
    fn truncate_blocks(&mut self, keep: usize, rows: usize) -> Vec<u64> {
        let mut freed = Vec::new();
        for blocks in &mut self.columns {
            while blocks.len() > keep {
                if let Some(chunk) = blocks.pop().and_then(|b| b.paged_chunk()) {
                    freed.extend(chunk.first_page..chunk.first_page + chunk.pages as u64);
                }
            }
        }
        self.rows = rows;
        freed
    }
}

/// A partitioned, block-organized table.
pub struct Table {
    name: String,
    schema: Schema,
    partitions: RwLock<Vec<Partition>>,
    vector_size: usize,
    /// Round-robin cursor so successive bulk loads stay balanced.
    next_partition: AtomicUsize,
    /// Ordinals of columns declared unique by the loader. The
    /// partition-parallel driver relies on this to prove that a GROUP BY
    /// containing such a column never spans partitions (paper Sec. 4.4:
    /// "the grouping key (ID, Node) ... can be derived from a partitioning
    /// based on ID, no repartitioning is necessary").
    unique_columns: RwLock<Vec<usize>>,
    /// Monotonic data version, bumped on every non-empty append. The
    /// invalidation primitive the serving-layer caches key on: a cache
    /// entry built at version `v` is valid exactly while `version() == v`.
    data_version: AtomicU64,
    /// The owning catalog's epoch counter (shared when the table was
    /// created through a [`crate::catalog::Catalog`]); appends bump it so
    /// epoch-keyed caches — the engine's plan cache — also observe DML.
    catalog_epoch: Arc<AtomicU64>,
    /// Persistent environment (buffer pool + WAL); `None` keeps the
    /// table purely in memory.
    env: Option<Arc<StorageEnv>>,
    /// Engine-wide transaction state (shared with the owning catalog):
    /// appends inside an open transaction defer their commit marker and
    /// record logical undo.
    txn: Arc<TxnState>,
    /// Serializes persistent appends on this table so WAL order equals
    /// publish order — the invariant that makes redo replay
    /// deterministic. Uncontended (and untouched) in in-memory mode.
    append_lock: Mutex<()>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema, config: &EngineConfig) -> Table {
        Table::with_epoch(name, schema, config, Arc::new(AtomicU64::new(0)))
    }

    /// A table whose appends also bump `catalog_epoch` — the constructor
    /// the [`crate::catalog::Catalog`] uses to thread its version counter
    /// through to DML.
    pub fn with_epoch(
        name: impl Into<String>,
        schema: Schema,
        config: &EngineConfig,
        catalog_epoch: Arc<AtomicU64>,
    ) -> Table {
        Table::with_storage(name, schema, config, catalog_epoch, None, Arc::default())
    }

    /// Full constructor: a table backed by a persistent environment when
    /// `env` is set, sharing the owning catalog's transaction state.
    pub(crate) fn with_storage(
        name: impl Into<String>,
        schema: Schema,
        config: &EngineConfig,
        catalog_epoch: Arc<AtomicU64>,
        env: Option<Arc<StorageEnv>>,
        txn: Arc<TxnState>,
    ) -> Table {
        let width = schema.len();
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            partitions: RwLock::new(
                (0..config.partitions.max(1)).map(|_| Partition::new(width)).collect(),
            ),
            vector_size: config.vector_size.max(1),
            next_partition: AtomicUsize::new(0),
            unique_columns: RwLock::new(Vec::new()),
            data_version: AtomicU64::new(0),
            catalog_epoch,
            env,
            txn,
            append_lock: Mutex::new(()),
        }
    }

    /// Rebuild a table from its checkpointed directory entry. The stored
    /// layout (partition count, vector size, round-robin cursor) wins
    /// over the current config so the rebuilt table is bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        name: &str,
        schema: Schema,
        vector_size: usize,
        partitions: Vec<PartitionMeta>,
        next_partition: u64,
        unique_columns: Vec<usize>,
        catalog_epoch: Arc<AtomicU64>,
        env: Arc<StorageEnv>,
        txn: Arc<TxnState>,
    ) -> Table {
        Table {
            name: name.to_ascii_lowercase(),
            schema,
            partitions: RwLock::new(partitions.into_iter().map(Partition::from_meta).collect()),
            vector_size: vector_size.max(1),
            next_partition: AtomicUsize::new(next_partition as usize),
            unique_columns: RwLock::new(unique_columns),
            data_version: AtomicU64::new(0),
            catalog_epoch,
            env: Some(env),
            txn,
            append_lock: Mutex::new(()),
        }
    }

    /// The persistent environment backing this table, if any.
    pub(crate) fn storage_env(&self) -> Option<&StorageEnv> {
        self.env.as_deref()
    }

    pub(crate) fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// Checkpoint description: round-robin cursor, unique columns, and
    /// every partition's paged block layout. Errors if any block is
    /// memory-resident (never the case for a persistent table).
    pub(crate) fn checkpoint_meta(&self) -> Result<(u64, Vec<usize>, Vec<PartitionMeta>)> {
        let parts = self.partitions.read();
        let metas: Result<Vec<PartitionMeta>> = parts.iter().map(Partition::meta).collect();
        Ok((
            self.next_partition.load(AtomicOrdering::Acquire) as u64,
            self.unique_columns.read().clone(),
            metas?,
        ))
    }

    /// Per-partition block counts right now — the snapshot a scan pins
    /// at construction. Blocks are immutable and only ever appended, so
    /// bounding a scan by these counts yields a consistent
    /// prefix-of-the-table view without blocking writers.
    pub fn snapshot(&self) -> Vec<usize> {
        self.partitions.read().iter().map(Partition::block_count).collect()
    }

    /// Monotonic data version: 0 at creation, +1 per non-empty append.
    pub fn version(&self) -> u64 {
        self.data_version.load(AtomicOrdering::Acquire)
    }

    /// Declare a column as unique (a key). This is a loader-supplied hint;
    /// it is not enforced on insert.
    pub fn declare_unique(&self, column: &str) -> Result<()> {
        let idx = self.schema.index_of(column).ok_or_else(|| {
            EngineError::Catalog(format!(
                "table {}: no column {column:?} to declare unique",
                self.name
            ))
        })?;
        let added = {
            let mut cols = self.unique_columns.write();
            if cols.contains(&idx) {
                false
            } else {
                cols.push(idx);
                true
            }
        };
        if added {
            let undo =
                || UndoRecord::Unique { name: self.name.clone(), column: column.to_string() };
            match &self.env {
                Some(env) if !env.is_replaying() => {
                    let _dml = env.dml_lock.read();
                    env.log_statement(
                        &self.txn,
                        persist::REC_UNIQUE,
                        &persist::encode_unique(&self.name, column),
                        undo,
                    )?;
                }
                Some(_) => {}
                None => {
                    self.txn.record(undo);
                }
            }
        }
        Ok(())
    }

    /// Remove a unique-column declaration (rollback of
    /// [`Table::declare_unique`]; never logged).
    pub(crate) fn undeclare_unique(&self, column: &str) {
        if let Some(idx) = self.schema.index_of(column) {
            self.unique_columns.write().retain(|&c| c != idx);
        }
    }

    /// Is column `idx` declared unique?
    pub fn is_unique_column(&self, idx: usize) -> bool {
        self.unique_columns.read().contains(&idx)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.read().len()
    }

    pub fn row_count(&self) -> usize {
        self.partitions.read().iter().map(Partition::rows).sum()
    }

    /// Bulk-append columnar data. Rows are cut into `vector_size` chunks and
    /// distributed round-robin over the partitions, which for a table with a
    /// unique key column yields the balanced, key-disjoint partitioning the
    /// paper's parallel ModelJoin assumes (Sec. 4.4).
    pub fn append(&self, columns: Vec<ColumnVector>) -> Result<()> {
        if columns.len() != self.schema.len() {
            return Err(EngineError::Catalog(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, ColumnVector::len);
        for (i, (col, def)) in columns.iter().zip(self.schema.columns()).enumerate() {
            if col.len() != rows {
                return Err(EngineError::Catalog(format!(
                    "table {}: ragged input at column {i}",
                    self.name
                )));
            }
            if col.data_type() != def.dtype {
                return Err(EngineError::Type(format!(
                    "table {}: column {:?} expects {}, got {}",
                    self.name,
                    def.name,
                    def.dtype.name(),
                    col.data_type().name()
                )));
            }
        }
        if rows == 0 {
            return Ok(());
        }
        match self.env.clone() {
            None => self.append_mem(&columns, rows),
            Some(env) => self.append_persistent(&env, &columns, rows),
        }
    }

    /// Pre-append undo record: per-partition (block count, rows) plus
    /// the round-robin cursor, captured before any block of this append
    /// publishes.
    fn append_undo(&self, parts: &[Partition]) -> UndoRecord {
        UndoRecord::Append {
            name: self.name.clone(),
            parts: parts.iter().map(|p| (p.block_count(), p.rows())).collect(),
            next_partition: self.next_partition.load(AtomicOrdering::Acquire),
        }
    }

    /// The in-memory append path (unchanged pre-persistence behavior).
    fn append_mem(&self, columns: &[ColumnVector], rows: usize) -> Result<()> {
        let mut parts = self.partitions.write();
        let undo = self.append_undo(&parts);
        self.txn.record(|| undo);
        let pcount = parts.len();
        let mut start = 0;
        while start < rows {
            let end = (start + self.vector_size).min(rows);
            let chunk: Vec<ColumnVector> = columns.iter().map(|c| c.slice(start, end)).collect();
            let p = self.next_partition.fetch_add(1, AtomicOrdering::Relaxed) % pcount;
            parts[p].append_chunk(&chunk);
            start = end;
        }
        // Version bumps happen while the partition write lock is still
        // held, so a reader that observes the old version has not yet seen
        // any of the new blocks either.
        self.data_version.fetch_add(1, AtomicOrdering::Release);
        self.catalog_epoch.fetch_add(1, AtomicOrdering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
        Ok(())
    }

    /// WAL-then-page append: log the statement as a committed record
    /// group (durability point), serialize each chunk's columns into
    /// pages through the buffer pool, then publish the blocks under a
    /// short partition write lock. Readers never wait on the fsync. The
    /// per-table append lock keeps WAL order identical to round-robin
    /// cursor order, so redo replay lands every chunk on the same
    /// partition it was on before the crash.
    fn append_persistent(
        &self,
        env: &Arc<StorageEnv>,
        columns: &[ColumnVector],
        rows: usize,
    ) -> Result<()> {
        let _dml = env.dml_lock.read();
        let _order = self.append_lock.lock();
        if !env.is_replaying() {
            // The undo pre-state is captured before any chunk is written
            // or published; the append lock keeps it exact.
            let undo = self.append_undo(&self.partitions.read());
            env.log_statement(
                &self.txn,
                persist::REC_APPEND,
                &persist::encode_append(&self.name, columns),
                || undo,
            )?;
        }
        let pcount = self.partitions.read().len();
        let mut pending: Vec<(usize, Vec<Block>, usize)> = Vec::new();
        let mut start = 0;
        while start < rows {
            let end = (start + self.vector_size).min(rows);
            let p = self.next_partition.fetch_add(1, AtomicOrdering::Relaxed) % pcount;
            let mut blocks = Vec::with_capacity(columns.len());
            for col in columns {
                let chunk_data = col.slice(start, end);
                let (min, max) = minmax(&chunk_data);
                let mut bytes = Vec::new();
                persist::encode_column(&mut bytes, &chunk_data);
                let chunk = env.write_chunk(&bytes, end - start)?;
                blocks.push(Block::paged(chunk, min, max));
            }
            pending.push((p, blocks, end - start));
            start = end;
        }
        let mut parts = self.partitions.write();
        for (p, blocks, chunk_rows) in pending {
            parts[p].append_paged_chunk(blocks, chunk_rows);
        }
        self.data_version.fetch_add(1, AtomicOrdering::Release);
        self.catalog_epoch.fetch_add(1, AtomicOrdering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
        Ok(())
    }

    /// Append row-oriented values (used by SQL `INSERT ... VALUES`).
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<()> {
        let mut columns: Vec<ColumnVector> =
            self.schema.columns().iter().map(|c| ColumnVector::empty(c.dtype)).collect();
        for row in rows {
            if row.len() != self.schema.len() {
                return Err(EngineError::Catalog(format!(
                    "table {}: expected {} values per row, got {}",
                    self.name,
                    self.schema.len(),
                    row.len()
                )));
            }
            for (col, value) in columns.iter_mut().zip(row) {
                col.push(value.clone())?;
            }
        }
        self.append(columns)
    }

    /// Run `f` over every (partition index, partition) pair.
    pub fn with_partitions<R>(&self, f: impl FnOnce(&[Partition]) -> R) -> R {
        f(&self.partitions.read())
    }

    /// Write-lock every partition — the vacuum rebuild holds these
    /// guards (for every table at once) across the copy + pool swap so
    /// no reader pins a page of the file being replaced.
    pub(crate) fn lock_partitions_exclusive(&self) -> RwLockWriteGuard<'_, Vec<Partition>> {
        self.partitions.write()
    }

    /// Every data-file page this table's paged chunks occupy (the pages
    /// DROP TABLE returns to the free list).
    pub(crate) fn all_pages(&self) -> Vec<u64> {
        let parts = self.partitions.read();
        let mut pages = Vec::new();
        for part in parts.iter() {
            for blocks in part.columns() {
                for block in blocks {
                    if let Some(chunk) = block.paged_chunk() {
                        pages.extend(chunk.first_page..chunk.first_page + chunk.pages as u64);
                    }
                }
            }
        }
        pages
    }

    /// Roll an append back: truncate each partition to its pre-append
    /// (block count, rows) and restore the round-robin cursor. Returns
    /// the freed page ids. Versions bump (they are monotonic watermarks,
    /// never restored) so caches built on the rolled-back data die.
    pub(crate) fn truncate_to_prestate(
        &self,
        prestate: &[(usize, usize)],
        next_partition: usize,
    ) -> Vec<u64> {
        let mut parts = self.partitions.write();
        let mut freed = Vec::new();
        for (part, &(keep, rows)) in parts.iter_mut().zip(prestate) {
            freed.extend(part.truncate_blocks(keep, rows));
        }
        self.next_partition.store(next_partition, AtomicOrdering::Release);
        self.data_version.fetch_add(1, AtomicOrdering::Release);
        self.catalog_epoch.fetch_add(1, AtomicOrdering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
        freed
    }

    /// Materialize one partition as a list of batches (one per block row
    /// group).
    pub fn partition_batches(&self, p: usize) -> Result<Vec<Batch>> {
        let parts = self.partitions.read();
        let part = &parts[p];
        (0..part.block_count()).map(|b| part.block_batch(b, self.storage_env())).collect()
    }

    /// Materialize the whole table as one batch per block.
    pub fn all_batches(&self) -> Result<Vec<Batch>> {
        let mut out = Vec::new();
        for p in 0..self.partition_count() {
            out.extend(self.partition_batches(p)?);
        }
        Ok(out)
    }

    /// Approximate data footprint in bytes (heap for memory-resident
    /// blocks, on-disk chunk size for paged ones).
    pub fn byte_size(&self) -> usize {
        let parts = self.partitions.read();
        parts
            .iter()
            .map(|p| {
                p.columns
                    .iter()
                    .map(|blocks| blocks.iter().map(Block::byte_size).sum::<usize>())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Table({}, {} cols, {} rows, {} partitions)",
            self.name,
            self.schema.len(),
            self.row_count(),
            self.partition_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("v", DataType::Float)])
            .unwrap()
    }

    fn config() -> EngineConfig {
        EngineConfig { vector_size: 4, partitions: 3, ..Default::default() }
    }

    #[test]
    fn schema_rejects_duplicates_and_is_case_insensitive() {
        let err = Schema::new(vec![
            ColumnDef::new("A", DataType::Int),
            ColumnDef::new("a", DataType::Int),
        ])
        .unwrap_err();
        assert!(matches!(err, EngineError::Catalog(_)));
        let s = int_schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn append_distributes_blocks_round_robin() {
        let t = Table::new("t", int_schema(), &config());
        let n = 10; // 3 blocks of 4,4,2 over 3 partitions
        t.append(vec![
            ColumnVector::Int((0..n).collect()),
            ColumnVector::Float((0..n).map(|i| i as f64).collect()),
        ])
        .unwrap();
        assert_eq!(t.row_count(), 10);
        t.with_partitions(|parts| {
            assert_eq!(parts.len(), 3);
            assert_eq!(parts[0].rows(), 4);
            assert_eq!(parts[1].rows(), 4);
            assert_eq!(parts[2].rows(), 2);
        });
        // A second load continues the round-robin at partition 0.
        t.append(vec![ColumnVector::Int(vec![100]), ColumnVector::Float(vec![1.0])]).unwrap();
        t.with_partitions(|parts| assert_eq!(parts[0].rows(), 5));
    }

    #[test]
    fn sma_tracks_min_max() {
        let t = Table::new("t", int_schema(), &config());
        t.append(vec![
            ColumnVector::Int(vec![5, 1, 9, 3]),
            ColumnVector::Float(vec![0.5, 0.1, 0.9, 0.3]),
        ])
        .unwrap();
        t.with_partitions(|parts| {
            let (min, max) = parts[0].sma(0, 0);
            assert_eq!(min, &Value::Int(1));
            assert_eq!(max, &Value::Int(9));
            let (min, max) = parts[0].sma(1, 0);
            assert_eq!(min, &Value::Float(0.1));
            assert_eq!(max, &Value::Float(0.9));
        });
    }

    #[test]
    fn append_validates_schema() {
        let t = Table::new("t", int_schema(), &config());
        // Wrong arity.
        assert!(t.append(vec![ColumnVector::Int(vec![1])]).is_err());
        // Wrong type.
        assert!(t
            .append(vec![ColumnVector::Float(vec![1.0]), ColumnVector::Float(vec![1.0])])
            .is_err());
        // Ragged.
        assert!(t
            .append(vec![ColumnVector::Int(vec![1, 2]), ColumnVector::Float(vec![1.0])])
            .is_err());
    }

    #[test]
    fn append_rows_round_trips() {
        let t = Table::new("t", int_schema(), &config());
        t.append_rows(&[
            vec![Value::Int(1), Value::Float(0.1)],
            vec![Value::Int(2), Value::Float(0.2)],
        ])
        .unwrap();
        let batches = t.all_batches().unwrap();
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_append_is_noop() {
        let t = Table::new("t", int_schema(), &config());
        t.append(vec![ColumnVector::Int(vec![]), ColumnVector::Float(vec![])]).unwrap();
        assert_eq!(t.row_count(), 0);
        assert!(t.all_batches().unwrap().is_empty());
    }

    #[test]
    fn version_bumps_on_append_only() {
        let t = Table::new("t", int_schema(), &config());
        assert_eq!(t.version(), 0);
        // Empty and failed appends leave the version untouched.
        t.append(vec![ColumnVector::Int(vec![]), ColumnVector::Float(vec![])]).unwrap();
        assert!(t.append(vec![ColumnVector::Int(vec![1])]).is_err());
        assert_eq!(t.version(), 0);
        t.append(vec![ColumnVector::Int(vec![1]), ColumnVector::Float(vec![0.1])]).unwrap();
        assert_eq!(t.version(), 1);
        t.append_rows(&[vec![Value::Int(2), Value::Float(0.2)]]).unwrap();
        assert_eq!(t.version(), 2);
    }

    #[test]
    fn appends_bump_shared_epoch() {
        let epoch = Arc::new(AtomicU64::new(7));
        let t = Table::with_epoch("t", int_schema(), &config(), Arc::clone(&epoch));
        t.append(vec![ColumnVector::Int(vec![1]), ColumnVector::Float(vec![0.1])]).unwrap();
        assert_eq!(epoch.load(AtomicOrdering::Acquire), 8);
        assert_eq!(t.version(), 1, "table-local version independent of epoch base");
    }
}
