//! Engine configuration.

/// Engine tuning knobs. Defaults reproduce the paper's evaluation setup
/// (Sec. 6.1): "the batch size is equal to the database engine's vector size
/// of 1024. Tables are partitioned into 12 partitions and the engine runs
/// with a parallelism level of 12."
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Rows per column vector / storage block.
    pub vector_size: usize,
    /// Number of table partitions.
    pub partitions: usize,
    /// Number of worker threads for partition-parallel queries.
    pub parallelism: usize,
    /// Enable min/max (SMA) block pruning in scans — the optimization
    /// ML-To-SQL's layer filters rely on (paper Sec. 4.4).
    pub sma_pruning: bool,
    /// Enable extraction of hash joins from cross join + equality filters.
    pub hash_join: bool,
    /// Enable predicate pushdown through projections and joins.
    pub predicate_pushdown: bool,
    /// Enable column pruning through joins: when a projection or aggregation
    /// reads only part of a join's output, the join's inputs are narrowed so
    /// the per-row gather materializes only live columns. Matters for
    /// ML-To-SQL, whose model-table joins carry many dead weight columns.
    pub column_pruning: bool,
    /// Threads a single large tensor kernel (one `sgemm`) may fan out to.
    /// Default 1: partition parallelism is the engine's primary parallel
    /// axis, and intra-kernel threads would oversubscribe it. Raise for
    /// low-concurrency workloads with very large per-batch multiplies.
    pub kernel_threads: usize,
    /// Run joins and aggregations through the seed value-at-a-time
    /// operators (`exec::rowwise`) instead of the vectorized ones. Off by
    /// default; exists so benchmarks can measure the pre-vectorization
    /// baseline in-process. Also disables the partial-aggregate parallel
    /// path, which only the vectorized accumulators support.
    pub rowwise_ops: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vector_size: 1024,
            partitions: 12,
            parallelism: 12,
            sma_pruning: true,
            hash_join: true,
            predicate_pushdown: true,
            column_pruning: true,
            kernel_threads: 1,
            rowwise_ops: false,
        }
    }
}

impl EngineConfig {
    /// A configuration for unit tests: tiny vectors force multi-batch paths.
    pub fn test_small() -> Self {
        EngineConfig { vector_size: 4, partitions: 3, parallelism: 2, ..Default::default() }
    }

    /// Serial execution (one partition, one thread) — the baseline for the
    /// parallelism ablation.
    pub fn serial() -> Self {
        EngineConfig { partitions: 1, parallelism: 1, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, 1024);
        assert_eq!(c.partitions, 12);
        assert_eq!(c.parallelism, 12);
        assert!(c.sma_pruning && c.hash_join && c.predicate_pushdown && c.column_pruning);
        assert_eq!(c.kernel_threads, 1, "kernels stay single-threaded by default");
        assert!(!c.rowwise_ops, "vectorized operators are the default");
    }
}
