//! Engine configuration.

use crate::error::{EngineError, Result};

/// Engine tuning knobs. Defaults reproduce the paper's evaluation setup
/// (Sec. 6.1): "the batch size is equal to the database engine's vector size
/// of 1024. Tables are partitioned into 12 partitions and the engine runs
/// with a parallelism level of 12."
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Rows per column vector / storage block.
    pub vector_size: usize,
    /// Number of table partitions.
    pub partitions: usize,
    /// Number of worker threads for partition-parallel queries.
    pub parallelism: usize,
    /// Enable min/max (SMA) block pruning in scans — the optimization
    /// ML-To-SQL's layer filters rely on (paper Sec. 4.4).
    pub sma_pruning: bool,
    /// Enable extraction of hash joins from cross join + equality filters.
    pub hash_join: bool,
    /// Enable predicate pushdown through projections and joins.
    pub predicate_pushdown: bool,
    /// Enable column pruning through joins: when a projection or aggregation
    /// reads only part of a join's output, the join's inputs are narrowed so
    /// the per-row gather materializes only live columns. Matters for
    /// ML-To-SQL, whose model-table joins carry many dead weight columns.
    pub column_pruning: bool,
    /// Worker threads owned by the process-wide unified scheduler — the
    /// single pool that runs operator morsels, GEMM tile tasks, and serve
    /// batches. 0 (the default) sizes the pool to the machine
    /// (`std::thread::available_parallelism`). Replaces the old
    /// per-kernel `kernel_threads` knob, which `from_kv` still accepts as
    /// a deprecated alias for this field.
    pub worker_threads: usize,
    /// Run all compute through the unified work-stealing scheduler
    /// (default). When false, the engine reverts to the pre-scheduler
    /// three-pool layout (per-query `thread::scope` partition workers, a
    /// dedicated tensor kernel pool, dedicated serve workers) — kept so
    /// benchmarks can measure the baseline this layer replaced.
    pub unified_sched: bool,
    /// Run joins and aggregations through the seed value-at-a-time
    /// operators (`exec::rowwise`) instead of the vectorized ones. Off by
    /// default; exists so benchmarks can measure the pre-vectorization
    /// baseline in-process. Also disables the partial-aggregate parallel
    /// path, which only the vectorized accumulators support.
    pub rowwise_ops: bool,
    /// Capacity of the per-engine prepared-plan cache used by
    /// [`crate::Engine::execute_cached`]: SELECT statements are parsed,
    /// bound and optimized once and replayed until the catalog epoch moves.
    /// 0 disables caching entirely (every call re-plans).
    pub plan_cache_entries: usize,
    /// Depth of the serving layer's admission queue: requests submitted
    /// while this many are already waiting are rejected with an explicit
    /// overload error instead of queuing without bound. (Consumed by the
    /// `serve` crate; carried here so one config describes the stack.)
    pub serve_queue_depth: usize,
    /// Maximum extra latency, in microseconds, the serving layer's dynamic
    /// micro-batcher may add while coalescing point inference requests into
    /// a full vector before flushing a partial batch.
    pub batch_flush_us: u64,
    /// Run ModelJoin and serve inference through the int8 quantized path:
    /// weights quantized per output channel to i8, activations per row to
    /// 7-bit, integer GEMM with a fused dequantize epilogue. Off by
    /// default — results then match fp32 bit for bit. CPU-only; a
    /// GPU-resident model keeps the fp32 route regardless of this flag.
    pub quantized_inference: bool,
    /// Enable the observability span timers (per-operator and kernel wall
    /// clocks in the `obs` crate). Counters and gauges are always on;
    /// spans read the monotonic clock, so this knob exists to measure and
    /// bound their overhead. The flag is process-global — constructing an
    /// engine stores it, and the last engine constructed wins.
    pub obs_spans: bool,
    /// Number of in-process engine shards the sharded facade
    /// (`crates/shard`) stands up: tables declared sharded are
    /// hash-partitioned across this many independent `Engine` instances,
    /// each a stand-in for one node of a distributed deployment. 1 (the
    /// default) means unsharded single-engine execution; the knob is
    /// ignored by a plain `Engine` and consumed only by `ShardedEngine`.
    pub shards: usize,
    /// Root directory of the persistent storage layer. `None` (the
    /// default) keeps the engine purely in-memory with bit-identical
    /// pre-persistence behavior. When set, tables live in a paged
    /// columnar data file read through the buffer pool, DDL and DML are
    /// write-ahead logged, and [`crate::Engine::open`] replays the
    /// committed WAL prefix on startup (crash recovery). Pages freed by
    /// `DROP TABLE` (or orphaned by a crash-torn append) go to a free
    /// list and are re-used by later appends; `VACUUM` rebuilds the data
    /// file to return the space to the filesystem. `BEGIN` / `COMMIT` /
    /// `ROLLBACK` group statements into one atomically-recovered WAL
    /// record group. A sharded facade derives per-shard subdirectories
    /// (`shard-0`, `shard-1`, …) under this root.
    pub data_dir: Option<String>,
    /// Buffer-pool capacity in pages (16 KiB each): the bound on
    /// resident page frames, so scans over tables larger than the pool
    /// run in this much page memory. Ignored in in-memory mode.
    pub buffer_pool_pages: usize,
    /// `fsync` the WAL on commit (group-commit batched). Turning it off
    /// trades power-failure durability for load speed — contents still
    /// reach the OS on every append, so process-crash recovery within a
    /// running system is unaffected. Ignored in in-memory mode.
    pub wal_fsync: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vector_size: 1024,
            partitions: 12,
            parallelism: 12,
            sma_pruning: true,
            hash_join: true,
            predicate_pushdown: true,
            column_pruning: true,
            worker_threads: 0,
            unified_sched: true,
            rowwise_ops: false,
            plan_cache_entries: 128,
            serve_queue_depth: 1024,
            batch_flush_us: 200,
            quantized_inference: false,
            obs_spans: true,
            shards: 1,
            data_dir: None,
            buffer_pool_pages: 4096,
            wal_fsync: true,
        }
    }
}

impl EngineConfig {
    /// A configuration for unit tests: tiny vectors force multi-batch paths.
    pub fn test_small() -> Self {
        EngineConfig { vector_size: 4, partitions: 3, parallelism: 2, ..Default::default() }
    }

    /// Serial execution (one partition, one thread) — the baseline for the
    /// parallelism ablation.
    pub fn serial() -> Self {
        EngineConfig { partitions: 1, parallelism: 1, ..Default::default() }
    }

    /// The scheduler pool size this configuration asks for: the explicit
    /// [`EngineConfig::worker_threads`] value, or the machine's available
    /// parallelism when it is 0 (auto). Always ≥ 1.
    pub fn effective_worker_threads(&self) -> usize {
        if self.worker_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.worker_threads
        }
    }

    /// Serialize every knob as `key=value` lines (stable order). The
    /// inverse of [`EngineConfig::from_kv`]; used by benchmark drivers to
    /// record the exact engine setup next to their results.
    pub fn to_kv(&self) -> String {
        format!(
            "vector_size={}\npartitions={}\nparallelism={}\nsma_pruning={}\nhash_join={}\n\
             predicate_pushdown={}\ncolumn_pruning={}\nworker_threads={}\nunified_sched={}\n\
             rowwise_ops={}\n\
             plan_cache_entries={}\nserve_queue_depth={}\nbatch_flush_us={}\n\
             quantized_inference={}\nobs_spans={}\nshards={}\n\
             data_dir={}\nbuffer_pool_pages={}\nwal_fsync={}\n",
            self.vector_size,
            self.partitions,
            self.parallelism,
            self.sma_pruning,
            self.hash_join,
            self.predicate_pushdown,
            self.column_pruning,
            self.worker_threads,
            self.unified_sched,
            self.rowwise_ops,
            self.plan_cache_entries,
            self.serve_queue_depth,
            self.batch_flush_us,
            self.quantized_inference,
            self.obs_spans,
            self.shards,
            self.data_dir.as_deref().unwrap_or(""),
            self.buffer_pool_pages,
            self.wal_fsync,
        )
    }

    /// Parse `key=value` lines (blank lines and `#` comments allowed) on
    /// top of the defaults. Unknown keys and malformed values are errors —
    /// a typo in a knob name must not silently run the default.
    pub fn from_kv(text: &str) -> Result<EngineConfig> {
        fn bad(key: &str, value: &str) -> EngineError {
            EngineError::Unsupported(format!("config: bad value {value:?} for {key}"))
        }
        let mut cfg = EngineConfig::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| EngineError::Unsupported(format!("config: no '=' in {line:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "vector_size" => cfg.vector_size = value.parse().map_err(|_| bad(key, value))?,
                "partitions" => cfg.partitions = value.parse().map_err(|_| bad(key, value))?,
                "parallelism" => cfg.parallelism = value.parse().map_err(|_| bad(key, value))?,
                "sma_pruning" => cfg.sma_pruning = value.parse().map_err(|_| bad(key, value))?,
                "hash_join" => cfg.hash_join = value.parse().map_err(|_| bad(key, value))?,
                "predicate_pushdown" => {
                    cfg.predicate_pushdown = value.parse().map_err(|_| bad(key, value))?
                }
                "column_pruning" => {
                    cfg.column_pruning = value.parse().map_err(|_| bad(key, value))?
                }
                "worker_threads" => {
                    cfg.worker_threads = value.parse().map_err(|_| bad(key, value))?
                }
                // Deprecated alias from the pre-scheduler era; the old
                // intra-kernel knob now sizes the unified worker pool.
                "kernel_threads" => {
                    cfg.worker_threads = value.parse().map_err(|_| bad(key, value))?
                }
                "unified_sched" => {
                    cfg.unified_sched = value.parse().map_err(|_| bad(key, value))?
                }
                "rowwise_ops" => cfg.rowwise_ops = value.parse().map_err(|_| bad(key, value))?,
                "plan_cache_entries" => {
                    cfg.plan_cache_entries = value.parse().map_err(|_| bad(key, value))?
                }
                "serve_queue_depth" => {
                    cfg.serve_queue_depth = value.parse().map_err(|_| bad(key, value))?
                }
                "batch_flush_us" => {
                    cfg.batch_flush_us = value.parse().map_err(|_| bad(key, value))?
                }
                "quantized_inference" => {
                    cfg.quantized_inference = value.parse().map_err(|_| bad(key, value))?
                }
                "obs_spans" => cfg.obs_spans = value.parse().map_err(|_| bad(key, value))?,
                "shards" => cfg.shards = value.parse().map_err(|_| bad(key, value))?,
                // The empty string means "in-memory" so the knob always
                // serializes; a path with '=' or '#' would not round-trip
                // through this line format and is rejected up front.
                "data_dir" => {
                    cfg.data_dir = if value.is_empty() {
                        None
                    } else if value.contains(['#', '=']) {
                        return Err(bad(key, value));
                    } else {
                        Some(value.to_string())
                    }
                }
                "buffer_pool_pages" => {
                    cfg.buffer_pool_pages = value.parse().map_err(|_| bad(key, value))?
                }
                "wal_fsync" => cfg.wal_fsync = value.parse().map_err(|_| bad(key, value))?,
                other => {
                    return Err(EngineError::Unsupported(format!("config: unknown knob {other:?}")))
                }
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::strategy::Strategy;

    #[test]
    fn defaults_match_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, 1024);
        assert_eq!(c.partitions, 12);
        assert_eq!(c.parallelism, 12);
        assert!(c.sma_pruning && c.hash_join && c.predicate_pushdown && c.column_pruning);
        assert_eq!(c.worker_threads, 0, "scheduler pool auto-sizes to the machine");
        assert!(c.unified_sched, "the unified scheduler is the default execution mode");
        assert!(c.effective_worker_threads() >= 1);
        assert!(!c.rowwise_ops, "vectorized operators are the default");
        assert_eq!(c.plan_cache_entries, 128);
        assert_eq!(c.serve_queue_depth, 1024);
        assert_eq!(c.batch_flush_us, 200);
        assert!(!c.quantized_inference, "inference defaults to exact fp32");
        assert!(c.obs_spans, "span timers default on (counters are unconditional)");
        assert_eq!(c.shards, 1, "single-engine execution is the default");
        assert_eq!(c.data_dir, None, "in-memory storage is the default");
        assert_eq!(c.buffer_pool_pages, 4096, "64 MiB pool at 16 KiB pages");
        assert!(c.wal_fsync, "durability on by default");
    }

    #[test]
    fn kv_round_trips_default_and_modified() {
        let default = EngineConfig::default();
        assert_eq!(EngineConfig::from_kv(&default.to_kv()).unwrap(), default);

        let modified = EngineConfig {
            vector_size: 64,
            worker_threads: 5,
            unified_sched: false,
            rowwise_ops: true,
            plan_cache_entries: 0,
            serve_queue_depth: 7,
            batch_flush_us: 12345,
            quantized_inference: true,
            obs_spans: false,
            data_dir: Some("/tmp/idb data".into()),
            buffer_pool_pages: 17,
            wal_fsync: false,
            ..EngineConfig::default()
        };
        assert_eq!(EngineConfig::from_kv(&modified.to_kv()).unwrap(), modified);
    }

    #[test]
    fn kv_rejects_data_dir_that_cannot_round_trip() {
        assert!(EngineConfig::from_kv("data_dir=a=b").is_err());
        assert!(EngineConfig::from_kv("data_dir=a#b").is_err());
        let cfg = EngineConfig::from_kv("data_dir=").unwrap();
        assert_eq!(cfg.data_dir, None, "empty value means in-memory");
    }

    #[test]
    fn kv_accepts_deprecated_kernel_threads_alias() {
        let cfg = EngineConfig::from_kv("kernel_threads=3").unwrap();
        assert_eq!(cfg.worker_threads, 3, "alias writes worker_threads");
        assert_eq!(cfg.effective_worker_threads(), 3);
    }

    #[test]
    fn kv_accepts_comments_and_partial_overrides() {
        let cfg = EngineConfig::from_kv("# comment\n\n  batch_flush_us = 9\n").unwrap();
        assert_eq!(cfg.batch_flush_us, 9);
        assert_eq!(cfg.vector_size, 1024, "unset knobs keep defaults");
    }

    #[test]
    fn kv_rejects_unknown_keys_and_bad_values() {
        assert!(EngineConfig::from_kv("no_such_knob=1").is_err());
        assert!(EngineConfig::from_kv("vector_size=banana").is_err());
        assert!(EngineConfig::from_kv("just a line").is_err());
    }

    // Every knob randomized independently; `to_kv` → `from_kv` must be the
    // identity on all of them (a knob missing from either direction, or a
    // typo'd key name, fails here instead of silently running a default).
    proptest::proptest! {
        #[test]
        fn kv_round_trips_every_knob(
            vector_size in 1usize..5000,
            partitions in 1usize..64,
            parallelism in 1usize..64,
            sma_pruning in proptest::prelude::any::<bool>(),
            hash_join in proptest::prelude::any::<bool>(),
            predicate_pushdown in proptest::prelude::any::<bool>(),
            column_pruning in proptest::prelude::any::<bool>(),
            worker_threads in 0usize..64,
            unified_sched in proptest::prelude::any::<bool>(),
            rowwise_ops in proptest::prelude::any::<bool>(),
            plan_cache_entries in 0usize..1000,
            serve_queue_depth in 0usize..10000,
            batch_flush_us in 0u64..1_000_000,
            quantized_inference in proptest::prelude::any::<bool>(),
            obs_spans in proptest::prelude::any::<bool>(),
            shards in 1usize..16,
            // None, or a varied non-empty path (kv cannot represent '='
            // or '#' in the value, and trims surrounding whitespace, so
            // only paths free of those round-trip; see from_kv).
            data_dir in proptest::prelude::prop_oneof![
                proptest::prelude::Just(None),
                (1usize..100_000).prop_map(|n| Some(format!("/tmp/dir {n}/db.d")))
            ],
            buffer_pool_pages in 1usize..100_000,
            wal_fsync in proptest::prelude::any::<bool>(),
        ) {
            let cfg = EngineConfig {
                vector_size,
                partitions,
                parallelism,
                sma_pruning,
                hash_join,
                predicate_pushdown,
                column_pruning,
                worker_threads,
                unified_sched,
                rowwise_ops,
                plan_cache_entries,
                serve_queue_depth,
                batch_flush_us,
                quantized_inference,
                obs_spans,
                shards,
                data_dir,
                buffer_pool_pages,
                wal_fsync,
            };
            let round = EngineConfig::from_kv(&cfg.to_kv()).unwrap();
            proptest::prop_assert_eq!(round, cfg);
        }
    }
}
