//! Rule-based logical optimizer.
//!
//! Implements the rewrites the paper's generated queries depend on
//! (Sec. 4.4): predicate pushdown through projections and cross joins,
//! extraction of hash equi-joins from cross join + equality conjuncts
//! (including computed keys like `node = model.node - offset`), SMA
//! block-pruning predicates on scans, column pruning through joins, and
//! constant folding.

use crate::column::Batch;
use crate::config::EngineConfig;
use crate::expr::{BinaryOp, Expr};
use crate::plan::logical::{LogicalPlan, PlanSchema, PrunePredicate};
use crate::types::Value;
use std::collections::BTreeSet;

/// The optimizer; behaviour is controlled by [`EngineConfig`] flags so the
/// ablation benchmarks can switch individual rules off.
pub struct Optimizer {
    config: EngineConfig,
}

impl Optimizer {
    pub fn new(config: EngineConfig) -> Optimizer {
        Optimizer { config }
    }

    /// Optimize a bound plan.
    pub fn optimize(&self, plan: LogicalPlan) -> LogicalPlan {
        let plan = self.rewrite(plan);
        fold_plan_constants(plan)
    }

    fn rewrite(&self, plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::Filter { input, predicate } => {
                let input = self.rewrite(*input);
                if self.config.predicate_pushdown {
                    self.push_filter(input, predicate.split_conjuncts())
                } else {
                    LogicalPlan::Filter { input: Box::new(input), predicate }
                }
            }
            LogicalPlan::Project { input, exprs, schema } => {
                let input = self.rewrite(*input);
                let (input, exprs) = if self.config.column_pruning {
                    match prune_join_inputs(input, cols_of(&exprs)) {
                        (input, Some(map)) => {
                            let exprs =
                                exprs.into_iter().map(|e| e.map_columns(&|i| map[i])).collect();
                            (input, exprs)
                        }
                        (input, None) => (input, exprs),
                    }
                } else {
                    (input, exprs)
                };
                LogicalPlan::Project { input: Box::new(input), exprs, schema }
            }
            LogicalPlan::CrossJoin { left, right, schema } => LogicalPlan::CrossJoin {
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
                schema,
            },
            LogicalPlan::HashJoin { left, right, left_keys, right_keys, schema } => {
                LogicalPlan::HashJoin {
                    left: Box::new(self.rewrite(*left)),
                    right: Box::new(self.rewrite(*right)),
                    left_keys,
                    right_keys,
                    schema,
                }
            }
            LogicalPlan::Aggregate { input, group, aggs, schema } => {
                let input = self.rewrite(*input);
                let (input, group, aggs) = if self.config.column_pruning {
                    let mut used = cols_of(&group);
                    for a in &aggs {
                        if let Some(e) = &a.arg {
                            used.extend(e.columns());
                        }
                    }
                    match prune_join_inputs(input, used) {
                        (input, Some(map)) => {
                            let group =
                                group.into_iter().map(|e| e.map_columns(&|i| map[i])).collect();
                            let aggs = aggs
                                .into_iter()
                                .map(|mut a| {
                                    a.arg = a.arg.map(|e| e.map_columns(&|i| map[i]));
                                    a
                                })
                                .collect();
                            (input, group, aggs)
                        }
                        (input, None) => (input, group, aggs),
                    }
                } else {
                    (input, group, aggs)
                };
                LogicalPlan::Aggregate { input: Box::new(input), group, aggs, schema }
            }
            LogicalPlan::Sort { input, keys } => {
                LogicalPlan::Sort { input: Box::new(self.rewrite(*input)), keys }
            }
            LogicalPlan::Limit { input, n } => {
                LogicalPlan::Limit { input: Box::new(self.rewrite(*input)), n }
            }
            leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
        }
    }

    /// Push `conjuncts` as deep as possible into `input` (which is already
    /// rewritten).
    fn push_filter(&self, input: LogicalPlan, mut conjuncts: Vec<Expr>) -> LogicalPlan {
        conjuncts.retain(|c| *c != Expr::Literal(Value::Bool(true)));
        if conjuncts.is_empty() {
            return input;
        }
        match input {
            LogicalPlan::Filter { input: inner, predicate } => {
                let mut all = predicate.split_conjuncts();
                all.extend(conjuncts);
                self.push_filter(*inner, all)
            }
            LogicalPlan::Project { input: inner, exprs, schema } => {
                // Inline the projection expressions into the predicate and
                // push below the projection.
                let substituted: Vec<Expr> =
                    conjuncts.iter().map(|c| c.substitute(&exprs)).collect();
                LogicalPlan::Project {
                    input: Box::new(self.push_filter(*inner, substituted)),
                    exprs,
                    schema,
                }
            }
            LogicalPlan::CrossJoin { left, right, schema } => {
                let nleft = left.schema().len();
                let mut left_only = Vec::new();
                let mut right_only = Vec::new();
                let mut equi: Vec<(Expr, Expr)> = Vec::new();
                let mut residual = Vec::new();
                for c in conjuncts {
                    let cols = c.columns();
                    let all_left = cols.iter().all(|&i| i < nleft);
                    let all_right = cols.iter().all(|&i| i >= nleft);
                    if all_left && !cols.is_empty() {
                        left_only.push(c);
                    } else if all_right && !cols.is_empty() {
                        right_only.push(c.map_columns(&|i| i - nleft));
                    } else if let Some((l, r)) = split_equi(&c, nleft) {
                        if self.config.hash_join {
                            equi.push((l, r.map_columns(&|i| i - nleft)));
                        } else {
                            residual.push(c);
                        }
                    } else {
                        residual.push(c);
                    }
                }
                let left = Box::new(self.push_filter(*left, left_only));
                let right = Box::new(self.push_filter(*right, right_only));
                let joined = if equi.is_empty() {
                    LogicalPlan::CrossJoin { left, right, schema }
                } else {
                    let (left_keys, right_keys) = equi.into_iter().unzip();
                    LogicalPlan::HashJoin { left, right, left_keys, right_keys, schema }
                };
                wrap_filter(joined, residual)
            }
            LogicalPlan::HashJoin { left, right, left_keys, right_keys, schema } => {
                let nleft = left.schema().len();
                let mut left_only = Vec::new();
                let mut right_only = Vec::new();
                let mut residual = Vec::new();
                for c in conjuncts {
                    let cols = c.columns();
                    if !cols.is_empty() && cols.iter().all(|&i| i < nleft) {
                        left_only.push(c);
                    } else if !cols.is_empty() && cols.iter().all(|&i| i >= nleft) {
                        right_only.push(c.map_columns(&|i| i - nleft));
                    } else {
                        residual.push(c);
                    }
                }
                let join = LogicalPlan::HashJoin {
                    left: Box::new(self.push_filter(*left, left_only)),
                    right: Box::new(self.push_filter(*right, right_only)),
                    left_keys,
                    right_keys,
                    schema,
                };
                wrap_filter(join, residual)
            }
            LogicalPlan::Scan { table, schema, mut pruning } => {
                if self.config.sma_pruning {
                    for c in &conjuncts {
                        if let Some(p) = extract_prune_predicate(c) {
                            pruning.push(p);
                        }
                    }
                }
                // SMA pruning is block-granular: the filter must still run.
                wrap_filter(LogicalPlan::Scan { table, schema, pruning }, conjuncts)
            }
            other => wrap_filter(other, conjuncts),
        }
    }
}

/// Union of the columns referenced by `exprs`.
fn cols_of(exprs: &[Expr]) -> BTreeSet<usize> {
    exprs.iter().flat_map(|e| e.columns()).collect()
}

/// Column pruning through joins (late materialization): when the consumer
/// of a join reads only `used` output columns, narrow each join input to
/// the referenced columns (plus its key columns) so the join's per-row
/// gather materializes only live data. Returns the rewritten plan and, if
/// anything changed, the old→new output-column map the consumer must remap
/// its expressions through.
fn prune_join_inputs(
    plan: LogicalPlan,
    used: BTreeSet<usize>,
) -> (LogicalPlan, Option<Vec<usize>>) {
    match plan {
        LogicalPlan::HashJoin { left, right, left_keys, right_keys, schema } => {
            let nleft = left.schema().len();
            let mut keep_left: BTreeSet<usize> =
                used.iter().copied().filter(|&c| c < nleft).collect();
            keep_left.extend(left_keys.iter().flat_map(|k| k.columns()));
            let mut keep_right: BTreeSet<usize> =
                used.iter().copied().filter(|&c| c >= nleft).map(|c| c - nleft).collect();
            keep_right.extend(right_keys.iter().flat_map(|k| k.columns()));
            if keep_left.len() == nleft && keep_right.len() == right.schema().len() {
                return (
                    LogicalPlan::HashJoin { left, right, left_keys, right_keys, schema },
                    None,
                );
            }
            let (left, lmap) = narrow(*left, keep_left);
            let (right, rmap) = narrow(*right, keep_right);
            let left_keys: Vec<Expr> =
                left_keys.into_iter().map(|k| k.map_columns(&|i| lmap[i])).collect();
            let right_keys: Vec<Expr> =
                right_keys.into_iter().map(|k| k.map_columns(&|i| rmap[i])).collect();
            let map = join_output_map(&lmap, &rmap, left.schema().len());
            let schema = PlanSchema::join(left.schema(), right.schema());
            let join = LogicalPlan::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_keys,
                right_keys,
                schema,
            };
            (join, Some(map))
        }
        LogicalPlan::CrossJoin { left, right, schema } => {
            let nleft = left.schema().len();
            let keep_left: BTreeSet<usize> = used.iter().copied().filter(|&c| c < nleft).collect();
            let keep_right: BTreeSet<usize> =
                used.iter().copied().filter(|&c| c >= nleft).map(|c| c - nleft).collect();
            if keep_left.len() == nleft && keep_right.len() == right.schema().len() {
                return (LogicalPlan::CrossJoin { left, right, schema }, None);
            }
            let (left, lmap) = narrow(*left, keep_left);
            let (right, rmap) = narrow(*right, keep_right);
            let map = join_output_map(&lmap, &rmap, left.schema().len());
            let schema = PlanSchema::join(left.schema(), right.schema());
            let join =
                LogicalPlan::CrossJoin { left: Box::new(left), right: Box::new(right), schema };
            (join, Some(map))
        }
        other => (other, None),
    }
}

/// Narrow `plan` to the `keep` columns via a projection. Returns the
/// old→new column map (`usize::MAX` for dropped columns, which the caller
/// never references). At least one column is always kept: a zero-column
/// projection would lose the row count.
fn narrow(plan: LogicalPlan, mut keep: BTreeSet<usize>) -> (LogicalPlan, Vec<usize>) {
    let n = plan.schema().len();
    if keep.is_empty() && n > 0 {
        keep.insert(0);
    }
    let mut map = vec![usize::MAX; n];
    for (new, &old) in keep.iter().enumerate() {
        map[old] = new;
    }
    if keep.len() == n {
        return (plan, map);
    }
    let fields = keep.iter().map(|&i| plan.schema().fields[i].clone()).collect();
    let exprs = keep.iter().map(|&i| Expr::col(i)).collect();
    let schema = PlanSchema::new(fields);
    (LogicalPlan::Project { input: Box::new(plan), exprs, schema }, map)
}

/// Old→new map over a join's concatenated output, from the per-side maps.
fn join_output_map(lmap: &[usize], rmap: &[usize], new_nleft: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; lmap.len() + rmap.len()];
    for (old, &new) in lmap.iter().enumerate() {
        map[old] = new;
    }
    for (old, &new) in rmap.iter().enumerate() {
        if new != usize::MAX {
            map[lmap.len() + old] = new_nleft + new;
        }
    }
    map
}

fn wrap_filter(plan: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    if conjuncts.is_empty() {
        plan
    } else {
        LogicalPlan::Filter { input: Box::new(plan), predicate: Expr::conjoin(conjuncts) }
    }
}

/// If `c` is `lhs = rhs` with one side touching only left columns
/// (`< nleft`) and the other only right columns (`>= nleft`), return the
/// pair as `(left key, right key)`.
fn split_equi(c: &Expr, nleft: usize) -> Option<(Expr, Expr)> {
    let Expr::Binary { op: BinaryOp::Eq, left, right } = c else {
        return None;
    };
    let lc = left.columns();
    let rc = right.columns();
    if lc.is_empty() || rc.is_empty() {
        return None;
    }
    let l_all_left = lc.iter().all(|&i| i < nleft);
    let l_all_right = lc.iter().all(|&i| i >= nleft);
    let r_all_left = rc.iter().all(|&i| i < nleft);
    let r_all_right = rc.iter().all(|&i| i >= nleft);
    if l_all_left && r_all_right {
        Some((left.as_ref().clone(), right.as_ref().clone()))
    } else if l_all_right && r_all_left {
        Some((right.as_ref().clone(), left.as_ref().clone()))
    } else {
        None
    }
}

/// `column op literal` (or flipped) with a comparison operator becomes an
/// SMA pruning predicate.
fn extract_prune_predicate(c: &Expr) -> Option<PrunePredicate> {
    let Expr::Binary { op, left, right } = c else {
        return None;
    };
    if !op.is_comparison() || *op == BinaryOp::NotEq {
        return None;
    }
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(i), Expr::Literal(v)) => {
            Some(PrunePredicate { column: *i, op: *op, value: v.clone() })
        }
        (Expr::Literal(v), Expr::Column(i)) => {
            let flipped = match op {
                BinaryOp::Lt => BinaryOp::Gt,
                BinaryOp::LtEq => BinaryOp::GtEq,
                BinaryOp::Gt => BinaryOp::Lt,
                BinaryOp::GtEq => BinaryOp::LtEq,
                other => *other,
            };
            Some(PrunePredicate { column: *i, op: flipped, value: v.clone() })
        }
        _ => None,
    }
}

/// Fold constant subexpressions in every expression of the plan.
fn fold_plan_constants(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_plan_constants(*input)),
            predicate: fold_expr(predicate),
        },
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(fold_plan_constants(*input)),
            exprs: exprs.into_iter().map(fold_expr).collect(),
            schema,
        },
        LogicalPlan::CrossJoin { left, right, schema } => LogicalPlan::CrossJoin {
            left: Box::new(fold_plan_constants(*left)),
            right: Box::new(fold_plan_constants(*right)),
            schema,
        },
        LogicalPlan::HashJoin { left, right, left_keys, right_keys, schema } => {
            LogicalPlan::HashJoin {
                left: Box::new(fold_plan_constants(*left)),
                right: Box::new(fold_plan_constants(*right)),
                left_keys: left_keys.into_iter().map(fold_expr).collect(),
                right_keys: right_keys.into_iter().map(fold_expr).collect(),
                schema,
            }
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(fold_plan_constants(*input)),
            group: group.into_iter().map(fold_expr).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(fold_expr);
                    a
                })
                .collect(),
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_plan_constants(*input)),
            keys: keys.into_iter().map(|(e, asc)| (fold_expr(e), asc)).collect(),
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(fold_plan_constants(*input)), n }
        }
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    }
}

/// Evaluate constant subtrees (no column references) to literals.
pub fn fold_expr(expr: Expr) -> Expr {
    expr.transform(&|e| {
        if matches!(e, Expr::Literal(_)) || !e.columns().is_empty() {
            return None;
        }
        let batch = Batch::of_rows(1);
        match e.eval(&batch) {
            Ok(col) if col.len() == 1 => Some(Expr::Literal(col.value(0))),
            // Leave erroring constants (e.g. 1/0) in place: they surface at
            // execution time, matching SQL semantics.
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::binder::Binder;
    use crate::sql::{parse_statement, Statement};
    use crate::storage::{ColumnDef, Schema};
    use crate::types::DataType;

    fn optimize(sql: &str, config: EngineConfig) -> LogicalPlan {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Float),
            ])
            .unwrap(),
            &config,
        )
        .unwrap();
        cat.create_table(
            "m",
            Schema::new(vec![
                ColumnDef::new("node", DataType::Int),
                ColumnDef::new("w", DataType::Float),
            ])
            .unwrap(),
            &config,
        )
        .unwrap();
        let binder = Binder::new(&cat);
        let Statement::Select(s) = parse_statement(sql).unwrap() else { panic!() };
        Optimizer::new(config).optimize(binder.bind_select(&s).unwrap())
    }

    #[test]
    fn extracts_hash_join_from_comma_join() {
        let plan = optimize(
            "SELECT t.id FROM t, m WHERE t.id = m.node AND t.v > 0.5",
            EngineConfig::default(),
        );
        let s = plan.display_indent();
        assert!(s.contains("HashJoin"), "{s}");
        assert!(!s.contains("CrossJoin"), "{s}");
        // The v > 0.5 predicate went to the left scan side.
        assert!(s.contains("Filter (#1 > 0.5)"), "{s}");
    }

    #[test]
    fn computed_key_join_is_extracted() {
        // The node-ID-offset join of ML-To-SQL's optimized queries.
        let plan =
            optimize("SELECT t.id FROM t, m WHERE t.id = m.node - 3", EngineConfig::default());
        let s = plan.display_indent();
        assert!(s.contains("HashJoin [#0] = [(#0 - 3)]"), "{s}");
    }

    #[test]
    fn hash_join_disabled_keeps_cross_join() {
        let cfg = EngineConfig { hash_join: false, ..Default::default() };
        let plan = optimize("SELECT t.id FROM t, m WHERE t.id = m.node", cfg);
        let s = plan.display_indent();
        assert!(s.contains("CrossJoin"), "{s}");
        assert!(!s.contains("HashJoin"), "{s}");
    }

    #[test]
    fn pruning_predicates_reach_the_scan() {
        let plan =
            optimize("SELECT id FROM t WHERE id >= 10 AND id <= 20", EngineConfig::default());
        let s = plan.display_indent();
        assert!(s.contains("[2 pruning predicate(s)]"), "{s}");
        // Filter is still applied above the scan.
        assert!(s.contains("Filter"), "{s}");
    }

    #[test]
    fn pruning_disabled_by_flag() {
        let cfg = EngineConfig { sma_pruning: false, ..Default::default() };
        let plan = optimize("SELECT id FROM t WHERE id >= 10", cfg);
        assert!(!plan.display_indent().contains("pruning"), "{plan}");
    }

    #[test]
    fn filter_pushes_through_projection() {
        let plan = optimize(
            "SELECT s FROM (SELECT id, v * 2 AS s FROM t) AS q WHERE q.s > 1",
            EngineConfig::default(),
        );
        let s = plan.display_indent();
        // The filter must sit below both projections, directly over the scan,
        // with the projection expression inlined: (v*2) > 1.
        let filter_line = s.lines().find(|l| l.contains("Filter")).unwrap();
        assert!(filter_line.contains("((#1 * 2) > 1)"), "{s}");
        let filter_pos = s.find("Filter").unwrap();
        let project_pos = s.find("Project").unwrap();
        assert!(filter_pos > project_pos, "filter should be below projects: {s}");
    }

    #[test]
    fn constant_folding() {
        let plan = optimize("SELECT id + (1 + 2) FROM t", EngineConfig::default());
        let s = plan.display_indent();
        assert!(s.contains("(#0 + 3)"), "{s}");
    }

    #[test]
    fn flipped_literal_comparison_becomes_prune() {
        let p = extract_prune_predicate(&Expr::binary(
            BinaryOp::Lt,
            Expr::Literal(Value::Int(5)),
            Expr::Column(0),
        ))
        .unwrap();
        assert_eq!(p.op, BinaryOp::Gt);
        assert_eq!(p.value, Value::Int(5));
    }

    #[test]
    fn pushdown_disabled_keeps_filter_on_top() {
        let cfg = EngineConfig { predicate_pushdown: false, ..Default::default() };
        let plan = optimize("SELECT t.id FROM t, m WHERE t.id = m.node", cfg);
        let s = plan.display_indent();
        assert!(s.starts_with("Project"), "{s}");
        assert!(s.contains("CrossJoin"), "{s}");
    }
}
