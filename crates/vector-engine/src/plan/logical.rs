//! Logical plan nodes.

use crate::error::{EngineError, Result};
use crate::expr::{BinaryOp, Expr};
use crate::storage::Table;
use crate::types::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A named, typed output column of a plan node, optionally qualified by a
/// table alias.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanField {
    pub qualifier: Option<String>,
    pub name: String,
    pub dtype: DataType,
}

impl PlanField {
    pub fn new(qualifier: Option<&str>, name: &str, dtype: DataType) -> PlanField {
        PlanField {
            qualifier: qualifier.map(|q| q.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
            dtype,
        }
    }
}

/// The output schema of a plan node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanSchema {
    pub fields: Vec<PlanField>,
}

impl PlanSchema {
    pub fn new(fields: Vec<PlanField>) -> PlanSchema {
        PlanSchema { fields }
    }

    pub fn empty() -> PlanSchema {
        PlanSchema { fields: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Column types in order (used for expression type checking).
    pub fn types(&self) -> Vec<DataType> {
        self.fields.iter().map(|f| f.dtype).collect()
    }

    /// Resolve a possibly-qualified column name to an ordinal. Unqualified
    /// names must be unambiguous.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(str::to_ascii_lowercase);
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.name != name {
                continue;
            }
            if let Some(q) = &qualifier {
                if f.qualifier.as_deref() != Some(q.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                let shown = qualifier.map(|q| format!("{q}.{name}")).unwrap_or(name);
                return Err(EngineError::Plan(format!("ambiguous column reference {shown:?}")));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let shown = qualifier.map(|q| format!("{q}.{name}")).unwrap_or(name);
            EngineError::Plan(format!("unknown column {shown:?}"))
        })
    }

    /// Concatenate two schemas (join output).
    pub fn join(left: &PlanSchema, right: &PlanSchema) -> PlanSchema {
        let mut fields = left.fields.clone();
        fields.extend(right.fields.clone());
        PlanSchema { fields }
    }

    /// Replace every field's qualifier (subquery aliasing).
    pub fn requalify(&self, alias: &str) -> PlanSchema {
        let alias = alias.to_ascii_lowercase();
        PlanSchema {
            fields: self
                .fields
                .iter()
                .map(|f| PlanField {
                    qualifier: Some(alias.clone()),
                    name: f.name.clone(),
                    dtype: f.dtype,
                })
                .collect(),
        }
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name; `None` if not an aggregate.
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "SUM" => AggFunc::Sum,
            "COUNT" => AggFunc::Count,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Result type given the (optional) argument type.
    pub fn return_type(self, arg: Option<DataType>) -> Result<DataType> {
        match self {
            AggFunc::Count => Ok(DataType::Int),
            AggFunc::Avg => Ok(DataType::Float),
            AggFunc::Sum => {
                let t = arg.ok_or_else(|| EngineError::Plan("SUM requires an argument".into()))?;
                if !t.is_numeric() {
                    return Err(EngineError::Type("SUM requires a numeric argument".into()));
                }
                Ok(t)
            }
            AggFunc::Min | AggFunc::Max => {
                arg.ok_or_else(|| EngineError::Plan("MIN/MAX require an argument".into()))
            }
        }
    }
}

/// One aggregate computation: function plus bound argument expression
/// (`None` only for `COUNT(*)`).
#[derive(Clone, Debug, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub arg: Option<Expr>,
}

/// A block-pruning predicate attached to a scan: `column op literal`,
/// checked against each block's min/max SMA before the block is read.
#[derive(Clone, Debug, PartialEq)]
pub struct PrunePredicate {
    pub column: usize,
    pub op: BinaryOp,
    pub value: Value,
}

/// Logical query plan.
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    /// Full-table scan (optionally restricted to one partition at execution
    /// time by the parallel driver).
    Scan {
        table: Arc<Table>,
        schema: PlanSchema,
        /// SMA pruning predicates installed by the optimizer.
        pruning: Vec<PrunePredicate>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        schema: PlanSchema,
    },
    CrossJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        schema: PlanSchema,
    },
    /// Inner equi-join; key expressions are evaluated against the respective
    /// side (supports computed keys like `node - offset`, the ML-To-SQL
    /// node-ID optimization of Sec. 4.4).
    HashJoin {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        schema: PlanSchema,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group: Vec<Expr>,
        aggs: Vec<AggSpec>,
        schema: PlanSchema,
    },
    Sort {
        input: Box<LogicalPlan>,
        /// `(key expression, ascending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: u64,
    },
    /// Literal rows (used for `SELECT` without `FROM`: one empty row).
    Values {
        rows: Vec<Vec<Value>>,
        schema: PlanSchema,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &PlanSchema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::CrossJoin { schema, .. }
            | LogicalPlan::HashJoin { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Values { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Indented plan rendering (EXPLAIN-style), for debugging and tests.
    pub fn display_indent(&self) -> String {
        fn walk(plan: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match plan {
                LogicalPlan::Scan { table, pruning, .. } => {
                    out.push_str(&format!("{pad}Scan {}", table.name()));
                    if !pruning.is_empty() {
                        out.push_str(&format!(" [{} pruning predicate(s)]", pruning.len()));
                    }
                    out.push('\n');
                }
                LogicalPlan::Filter { input, predicate } => {
                    out.push_str(&format!("{pad}Filter {predicate}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Project { input, exprs, .. } => {
                    let list: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                    out.push_str(&format!("{pad}Project {}\n", list.join(", ")));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::CrossJoin { left, right, .. } => {
                    out.push_str(&format!("{pad}CrossJoin\n"));
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
                LogicalPlan::HashJoin { left, right, left_keys, right_keys, .. } => {
                    let l: Vec<String> = left_keys.iter().map(|e| e.to_string()).collect();
                    let r: Vec<String> = right_keys.iter().map(|e| e.to_string()).collect();
                    out.push_str(&format!(
                        "{pad}HashJoin [{}] = [{}]\n",
                        l.join(", "),
                        r.join(", ")
                    ));
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
                LogicalPlan::Aggregate { input, group, aggs, .. } => {
                    let g: Vec<String> = group.iter().map(|e| e.to_string()).collect();
                    let a: Vec<String> = aggs
                        .iter()
                        .map(|s| match &s.arg {
                            Some(e) => format!("{}({e})", s.func.name()),
                            None => format!("{}(*)", s.func.name()),
                        })
                        .collect();
                    out.push_str(&format!(
                        "{pad}Aggregate group=[{}] aggs=[{}]\n",
                        g.join(", "),
                        a.join(", ")
                    ));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Sort { input, keys } => {
                    let k: Vec<String> = keys
                        .iter()
                        .map(|(e, asc)| format!("{e} {}", if *asc { "ASC" } else { "DESC" }))
                        .collect();
                    out.push_str(&format!("{pad}Sort {}\n", k.join(", ")));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Limit { input, n } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Values { rows, .. } => {
                    out.push_str(&format!("{pad}Values ({} row(s))\n", rows.len()));
                }
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> PlanSchema {
        PlanSchema::new(vec![
            PlanField::new(Some("t"), "id", DataType::Int),
            PlanField::new(Some("t"), "v", DataType::Float),
            PlanField::new(Some("m"), "id", DataType::Int),
        ])
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = schema();
        assert_eq!(s.resolve(Some("t"), "id").unwrap(), 0);
        assert_eq!(s.resolve(Some("m"), "ID").unwrap(), 2);
        assert_eq!(s.resolve(None, "v").unwrap(), 1);
        // `id` appears under two qualifiers.
        assert!(s.resolve(None, "id").unwrap_err().to_string().contains("ambiguous"));
        assert!(s.resolve(None, "missing").is_err());
        assert!(s.resolve(Some("x"), "id").is_err());
    }

    #[test]
    fn join_and_requalify() {
        let l = PlanSchema::new(vec![PlanField::new(Some("a"), "x", DataType::Int)]);
        let r = PlanSchema::new(vec![PlanField::new(Some("b"), "y", DataType::Float)]);
        let j = PlanSchema::join(&l, &r);
        assert_eq!(j.len(), 2);
        let rq = j.requalify("sub");
        assert!(rq.fields.iter().all(|f| f.qualifier.as_deref() == Some("sub")));
        assert_eq!(rq.resolve(Some("sub"), "y").unwrap(), 1);
    }

    #[test]
    fn agg_func_parsing_and_types() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("exp"), None);
        assert_eq!(AggFunc::Count.return_type(None).unwrap(), DataType::Int);
        assert_eq!(AggFunc::Sum.return_type(Some(DataType::Float)).unwrap(), DataType::Float);
        assert_eq!(AggFunc::Sum.return_type(Some(DataType::Int)).unwrap(), DataType::Int);
        assert!(AggFunc::Sum.return_type(Some(DataType::Str)).is_err());
        assert!(AggFunc::Sum.return_type(None).is_err());
        assert_eq!(AggFunc::Avg.return_type(Some(DataType::Int)).unwrap(), DataType::Float);
    }
}
