//! Name resolution and semantic analysis: AST → logical plan.

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::expr::{BinaryOp, Expr, ScalarFunc, UnaryOp};
use crate::plan::logical::{AggFunc, AggSpec, LogicalPlan, PlanField, PlanSchema};
use crate::sql::ast::{AstExpr, SelectItem, SelectStmt, TableRef};
use crate::types::{DataType, Value};

/// Binds parsed SQL against a catalog, producing a [`LogicalPlan`].
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    pub fn new(catalog: &'a Catalog) -> Binder<'a> {
        Binder { catalog }
    }

    /// Bind a SELECT statement.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        // FROM: fold comma-separated references into a cross-join chain.
        let mut plan = if stmt.from.is_empty() {
            LogicalPlan::Values { rows: vec![vec![]], schema: PlanSchema::empty() }
        } else {
            let mut iter = stmt.from.iter();
            let mut p = self.bind_table_ref(iter.next().expect("non-empty"))?;
            for tr in iter {
                let r = self.bind_table_ref(tr)?;
                let schema = PlanSchema::join(p.schema(), r.schema());
                p = LogicalPlan::CrossJoin { left: Box::new(p), right: Box::new(r), schema };
            }
            p
        };

        // WHERE
        if let Some(selection) = &stmt.selection {
            let predicate = self.bind_expr(selection, plan.schema())?;
            if predicate.data_type(&plan.schema().types())? != DataType::Bool {
                return Err(EngineError::Type("WHERE predicate must be boolean".into()));
            }
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        // Projection (with or without aggregation).
        let has_agg = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            });
        plan = if has_agg {
            self.bind_aggregate_projection(plan, stmt)?
        } else {
            self.bind_plain_projection(plan, stmt)?
        };

        // ORDER BY: bound against the projected output schema; an integer
        // literal is a 1-based output position, as in standard SQL. A key
        // that only exists in the projection *input* (e.g. `SELECT v FROM t
        // ORDER BY id`) is carried as a hidden sort column and dropped
        // after the sort.
        if !stmt.order_by.is_empty() {
            let visible = plan.schema().len();
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            let mut added_hidden = false;
            for item in &stmt.order_by {
                let out_schema = plan.schema().clone();
                let key = if let AstExpr::Number(n) = &item.expr {
                    let pos: usize = n
                        .parse()
                        .map_err(|_| EngineError::Plan(format!("invalid ORDER BY position {n}")))?;
                    if pos == 0 || pos > visible {
                        return Err(EngineError::Plan(format!(
                            "ORDER BY position {pos} out of range"
                        )));
                    }
                    Expr::Column(pos - 1)
                } else {
                    match self.bind_expr(&item.expr, &out_schema) {
                        Ok(k) => k,
                        Err(outer_err) => {
                            // Try the projection input (not valid for
                            // aggregated queries, where only the output
                            // exists).
                            let LogicalPlan::Project { input, exprs, schema } = &mut plan else {
                                return Err(outer_err);
                            };
                            if matches!(input.as_ref(), LogicalPlan::Aggregate { .. }) {
                                return Err(outer_err);
                            }
                            let Ok(bound) = self.bind_expr(&item.expr, input.schema()) else {
                                return Err(outer_err);
                            };
                            let in_types = input.schema().types();
                            let dtype = bound.data_type(&in_types)?;
                            exprs.push(bound);
                            schema.fields.push(PlanField::new(
                                None,
                                &format!("_sort{}", keys.len()),
                                dtype,
                            ));
                            added_hidden = true;
                            Expr::Column(schema.len() - 1)
                        }
                    }
                };
                keys.push((key, item.asc));
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
            if added_hidden {
                // Drop the hidden sort columns again.
                let fields = plan.schema().fields[..visible].to_vec();
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    exprs: (0..visible).map(Expr::Column).collect(),
                    schema: PlanSchema::new(fields),
                };
            }
        }

        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }
        Ok(plan)
    }

    fn bind_table_ref(&self, tr: &TableRef) -> Result<LogicalPlan> {
        match tr {
            TableRef::Table { name, alias } => {
                let table = self.catalog.table(name)?;
                let qualifier = alias.as_deref().unwrap_or(name).to_ascii_lowercase();
                let fields = table
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| PlanField::new(Some(&qualifier), &c.name, c.dtype))
                    .collect();
                Ok(LogicalPlan::Scan {
                    table,
                    schema: PlanSchema::new(fields),
                    pruning: Vec::new(),
                })
            }
            TableRef::Subquery { query, alias } => {
                let inner = self.bind_select(query)?;
                let schema = inner.schema().requalify(alias);
                // A projection that only renames: identity expressions.
                let exprs = (0..schema.len()).map(Expr::Column).collect();
                Ok(LogicalPlan::Project { input: Box::new(inner), exprs, schema })
            }
            TableRef::Join { left, right, on } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                let schema = PlanSchema::join(l.schema(), r.schema());
                let join = LogicalPlan::CrossJoin { left: Box::new(l), right: Box::new(r), schema };
                match on {
                    None => Ok(join),
                    Some(cond) => {
                        let predicate = self.bind_expr(cond, join.schema())?;
                        if predicate.data_type(&join.schema().types())? != DataType::Bool {
                            return Err(EngineError::Type(
                                "JOIN ... ON condition must be boolean".into(),
                            ));
                        }
                        Ok(LogicalPlan::Filter { input: Box::new(join), predicate })
                    }
                }
            }
        }
    }

    fn bind_plain_projection(&self, input: LogicalPlan, stmt: &SelectStmt) -> Result<LogicalPlan> {
        let in_schema = input.schema().clone();
        let in_types = in_schema.types();
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    if in_schema.is_empty() {
                        return Err(EngineError::Plan("SELECT * without FROM".into()));
                    }
                    for (i, f) in in_schema.fields.iter().enumerate() {
                        exprs.push(Expr::Column(i));
                        fields.push(f.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let q = q.to_ascii_lowercase();
                    let mut any = false;
                    for (i, f) in in_schema.fields.iter().enumerate() {
                        if f.qualifier.as_deref() == Some(q.as_str()) {
                            exprs.push(Expr::Column(i));
                            fields.push(f.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(EngineError::Plan(format!("unknown table alias {q:?}")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, &in_schema)?;
                    let dtype = bound.data_type(&in_types)?;
                    let (qualifier, name) = output_field_name(expr, alias, exprs.len());
                    exprs.push(bound);
                    fields.push(PlanField::new(qualifier.as_deref(), &name, dtype));
                }
            }
        }
        Ok(LogicalPlan::Project { input: Box::new(input), exprs, schema: PlanSchema::new(fields) })
    }

    fn bind_aggregate_projection(
        &self,
        input: LogicalPlan,
        stmt: &SelectStmt,
    ) -> Result<LogicalPlan> {
        let in_schema = input.schema().clone();
        let in_types = in_schema.types();

        // 1. Bind the group keys.
        let mut group_bound = Vec::with_capacity(stmt.group_by.len());
        for g in &stmt.group_by {
            group_bound.push(self.bind_expr(g, &in_schema)?);
        }

        // 2. Collect distinct aggregate calls from the projection.
        let mut specs: Vec<AggSpec> = Vec::new();
        for item in &stmt.items {
            let SelectItem::Expr { expr, .. } = item else {
                return Err(EngineError::Plan(
                    "SELECT * cannot be combined with aggregation".into(),
                ));
            };
            self.collect_agg_specs(expr, &in_schema, &mut specs)?;
        }

        // 3. Aggregate output schema: group columns first, then aggregates.
        let mut agg_fields = Vec::new();
        for (k, g) in group_bound.iter().enumerate() {
            let field = if let Expr::Column(i) = g {
                in_schema.fields[*i].clone()
            } else {
                PlanField::new(None, &format!("_group{k}"), g.data_type(&in_types)?)
            };
            agg_fields.push(field);
        }
        for (k, spec) in specs.iter().enumerate() {
            let arg_type = spec.arg.as_ref().map(|a| a.data_type(&in_types)).transpose()?;
            agg_fields.push(PlanField::new(
                None,
                &format!("_agg{k}"),
                spec.func.return_type(arg_type)?,
            ));
        }
        let group_count = group_bound.len();
        let agg_plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group: group_bound.clone(),
            aggs: specs.clone(),
            schema: PlanSchema::new(agg_fields),
        };

        // 4. Rewrite the projection over the aggregate output.
        let agg_types = agg_plan.schema().types();
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &stmt.items {
            let SelectItem::Expr { expr, alias } = item else { unreachable!() };
            let rewritten =
                self.rewrite_post_agg(expr, &in_schema, &group_bound, &specs, group_count)?;
            let dtype = rewritten.data_type(&agg_types)?;
            let (qualifier, name) = output_field_name(expr, alias, exprs.len());
            exprs.push(rewritten);
            fields.push(PlanField::new(qualifier.as_deref(), &name, dtype));
        }
        Ok(LogicalPlan::Project {
            input: Box::new(agg_plan),
            exprs,
            schema: PlanSchema::new(fields),
        })
    }

    /// Collect the distinct aggregate calls inside `ast` as bound
    /// [`AggSpec`]s, rejecting nested aggregates.
    fn collect_agg_specs(
        &self,
        ast: &AstExpr,
        in_schema: &PlanSchema,
        specs: &mut Vec<AggSpec>,
    ) -> Result<()> {
        match ast {
            AstExpr::Function { name, args, wildcard_arg } if is_aggregate(name) => {
                let func = AggFunc::parse(name).expect("checked by is_aggregate");
                let arg = if *wildcard_arg {
                    if func != AggFunc::Count {
                        return Err(EngineError::Plan(format!("{}(*) is not valid", func.name())));
                    }
                    None
                } else {
                    if args.len() != 1 {
                        return Err(EngineError::Plan(format!(
                            "{} expects exactly one argument",
                            func.name()
                        )));
                    }
                    if contains_aggregate(&args[0]) {
                        return Err(EngineError::Plan("nested aggregates are not allowed".into()));
                    }
                    Some(self.bind_expr(&args[0], in_schema)?)
                };
                let spec = AggSpec { func, arg };
                if !specs.contains(&spec) {
                    specs.push(spec);
                }
                Ok(())
            }
            AstExpr::Binary { left, right, .. } => {
                self.collect_agg_specs(left, in_schema, specs)?;
                self.collect_agg_specs(right, in_schema, specs)
            }
            AstExpr::Unary { expr, .. } => self.collect_agg_specs(expr, in_schema, specs),
            AstExpr::Case { operand, whens, else_expr } => {
                if let Some(op) = operand {
                    self.collect_agg_specs(op, in_schema, specs)?;
                }
                for (c, v) in whens {
                    self.collect_agg_specs(c, in_schema, specs)?;
                    self.collect_agg_specs(v, in_schema, specs)?;
                }
                if let Some(e) = else_expr {
                    self.collect_agg_specs(e, in_schema, specs)?;
                }
                Ok(())
            }
            AstExpr::Function { args, .. } => {
                for a in args {
                    self.collect_agg_specs(a, in_schema, specs)?;
                }
                Ok(())
            }
            AstExpr::Cast { expr, .. } => self.collect_agg_specs(expr, in_schema, specs),
            AstExpr::Between { expr, low, high, .. } => {
                self.collect_agg_specs(expr, in_schema, specs)?;
                self.collect_agg_specs(low, in_schema, specs)?;
                self.collect_agg_specs(high, in_schema, specs)
            }
            _ => Ok(()),
        }
    }

    /// Rewrite a projection expression so it references the aggregate
    /// output: aggregate calls become agg columns, group expressions become
    /// group columns, and anything else must bottom out in literals.
    fn rewrite_post_agg(
        &self,
        ast: &AstExpr,
        in_schema: &PlanSchema,
        group_bound: &[Expr],
        specs: &[AggSpec],
        group_count: usize,
    ) -> Result<Expr> {
        // Aggregate call → its output column.
        if let AstExpr::Function { name, args, wildcard_arg } = ast {
            if is_aggregate(name) {
                let func = AggFunc::parse(name).expect("checked");
                let arg =
                    if *wildcard_arg { None } else { Some(self.bind_expr(&args[0], in_schema)?) };
                let spec = AggSpec { func, arg };
                let idx =
                    specs.iter().position(|s| *s == spec).expect("collected in collect_agg_specs");
                return Ok(Expr::Column(group_count + idx));
            }
        }
        // A whole subexpression equal to a group key → the group column.
        if let Ok(bound) = self.bind_expr(ast, in_schema) {
            if let Some(i) = group_bound.iter().position(|g| *g == bound) {
                return Ok(Expr::Column(i));
            }
            if bound.columns().is_empty() {
                // Pure constant — valid anywhere.
                return Ok(bound);
            }
        }
        // Otherwise recurse structurally.
        match ast {
            AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(self.rewrite_post_agg(
                    left,
                    in_schema,
                    group_bound,
                    specs,
                    group_count,
                )?),
                right: Box::new(self.rewrite_post_agg(
                    right,
                    in_schema,
                    group_bound,
                    specs,
                    group_count,
                )?),
            }),
            AstExpr::Unary { op, expr } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(self.rewrite_post_agg(
                    expr,
                    in_schema,
                    group_bound,
                    specs,
                    group_count,
                )?),
            }),
            AstExpr::Function { name, args, .. } => {
                let func = ScalarFunc::parse(name)
                    .ok_or_else(|| EngineError::Plan(format!("unknown function {name:?}")))?;
                let rewritten: Result<Vec<Expr>> = args
                    .iter()
                    .map(|a| self.rewrite_post_agg(a, in_schema, group_bound, specs, group_count))
                    .collect();
                Ok(Expr::Func { func, args: rewritten? })
            }
            AstExpr::Case { operand, whens, else_expr } => {
                let mut new_whens = Vec::with_capacity(whens.len());
                for (c, v) in whens {
                    let cond_ast = desugar_simple_case_cond(operand.as_deref(), c);
                    let cond = self.rewrite_post_agg(
                        &cond_ast,
                        in_schema,
                        group_bound,
                        specs,
                        group_count,
                    )?;
                    let val =
                        self.rewrite_post_agg(v, in_schema, group_bound, specs, group_count)?;
                    new_whens.push((cond, val));
                }
                let else_bound = match else_expr {
                    Some(e) => Some(Box::new(self.rewrite_post_agg(
                        e,
                        in_schema,
                        group_bound,
                        specs,
                        group_count,
                    )?)),
                    None => None,
                };
                Ok(Expr::Case { whens: new_whens, else_expr: else_bound })
            }
            AstExpr::Cast { expr, type_name } => Ok(Expr::Cast {
                expr: Box::new(self.rewrite_post_agg(
                    expr,
                    in_schema,
                    group_bound,
                    specs,
                    group_count,
                )?),
                to: DataType::parse_sql(type_name)?,
            }),
            AstExpr::Column { qualifier, name } => {
                let shown = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                };
                Err(EngineError::Plan(format!(
                    "column {shown:?} must appear in GROUP BY or inside an aggregate"
                )))
            }
            other => self.bind_expr(other, &PlanSchema::empty()).map_err(|_| {
                EngineError::Plan(format!("expression {other:?} is invalid after aggregation"))
            }),
        }
    }

    /// Bind an expression against a schema.
    pub fn bind_expr(&self, ast: &AstExpr, schema: &PlanSchema) -> Result<Expr> {
        match ast {
            AstExpr::Column { qualifier, name } => {
                let i = schema.resolve(qualifier.as_deref(), name)?;
                Ok(Expr::Column(i))
            }
            AstExpr::Number(text) => Ok(Expr::Literal(parse_number(text)?)),
            AstExpr::StringLit(s) => Ok(Expr::Literal(Value::Str(s.clone()))),
            AstExpr::BoolLit(b) => Ok(Expr::Literal(Value::Bool(*b))),
            AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, schema)?),
                right: Box::new(self.bind_expr(right, schema)?),
            }),
            AstExpr::Unary { op, expr } => {
                let inner = self.bind_expr(expr, schema)?;
                // Fold unary minus on a literal so `-1` is a plain literal
                // (needed for SMA pruning on `layer_in = -1`).
                if let (UnaryOp::Neg, Expr::Literal(v)) = (op, &inner) {
                    match v {
                        Value::Int(x) => return Ok(Expr::Literal(Value::Int(-x))),
                        Value::Float(x) => return Ok(Expr::Literal(Value::Float(-x))),
                        _ => {}
                    }
                }
                Ok(Expr::Unary { op: *op, expr: Box::new(inner) })
            }
            AstExpr::Function { name, args, wildcard_arg } => {
                if *wildcard_arg || is_aggregate(name) {
                    return Err(EngineError::Plan(format!(
                        "aggregate function {name:?} is not allowed here"
                    )));
                }
                let func = ScalarFunc::parse(name)
                    .ok_or_else(|| EngineError::Plan(format!("unknown function {name:?}")))?;
                let bound: Result<Vec<Expr>> =
                    args.iter().map(|a| self.bind_expr(a, schema)).collect();
                Ok(Expr::Func { func, args: bound? })
            }
            AstExpr::Case { operand, whens, else_expr } => {
                let mut bound_whens = Vec::with_capacity(whens.len());
                for (c, v) in whens {
                    let cond_ast = desugar_simple_case_cond(operand.as_deref(), c);
                    bound_whens
                        .push((self.bind_expr(&cond_ast, schema)?, self.bind_expr(v, schema)?));
                }
                let else_bound = match else_expr {
                    Some(e) => Some(Box::new(self.bind_expr(e, schema)?)),
                    None => None,
                };
                Ok(Expr::Case { whens: bound_whens, else_expr: else_bound })
            }
            AstExpr::Cast { expr, type_name } => Ok(Expr::Cast {
                expr: Box::new(self.bind_expr(expr, schema)?),
                to: DataType::parse_sql(type_name)?,
            }),
            AstExpr::Between { expr, low, high, negated } => {
                let e = self.bind_expr(expr, schema)?;
                let lo = self.bind_expr(low, schema)?;
                let hi = self.bind_expr(high, schema)?;
                let in_range = Expr::binary(
                    BinaryOp::And,
                    Expr::binary(BinaryOp::GtEq, e.clone(), lo),
                    Expr::binary(BinaryOp::LtEq, e, hi),
                );
                Ok(if *negated {
                    Expr::Unary { op: UnaryOp::Not, expr: Box::new(in_range) }
                } else {
                    in_range
                })
            }
        }
    }

    /// Evaluate a constant expression (INSERT values).
    pub fn eval_const(&self, ast: &AstExpr) -> Result<Value> {
        let bound = self.bind_expr(ast, &PlanSchema::empty())?;
        if !bound.columns().is_empty() {
            return Err(EngineError::Plan("INSERT values must be constant expressions".into()));
        }
        let batch = crate::column::Batch::of_rows(1);
        let col = bound.eval(&batch)?;
        Ok(col.value(0))
    }
}

/// Is `name` an aggregate (and not shadowed by a scalar function)?
fn is_aggregate(name: &str) -> bool {
    AggFunc::parse(name).is_some() && ScalarFunc::parse(name).is_none()
}

fn contains_aggregate(ast: &AstExpr) -> bool {
    match ast {
        AstExpr::Function { name, args, .. } => {
            is_aggregate(name) || args.iter().any(contains_aggregate)
        }
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Unary { expr, .. } => contains_aggregate(expr),
        AstExpr::Case { operand, whens, else_expr } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || whens.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        AstExpr::Cast { expr, .. } => contains_aggregate(expr),
        AstExpr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        _ => false,
    }
}

/// `CASE x WHEN v THEN ...` → condition `x = v`; searched CASE keeps the
/// condition as-is.
fn desugar_simple_case_cond(operand: Option<&AstExpr>, cond: &AstExpr) -> AstExpr {
    match operand {
        Some(op) => AstExpr::binary(BinaryOp::Eq, op.clone(), cond.clone()),
        None => cond.clone(),
    }
}

fn parse_number(text: &str) -> Result<Value> {
    if !text.contains('.') && !text.contains('e') && !text.contains('E') {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| EngineError::Parse(format!("invalid numeric literal {text:?}")))
}

/// Derive the output column name (and optional qualifier) of a projection
/// item.
fn output_field_name(
    expr: &AstExpr,
    alias: &Option<String>,
    position: usize,
) -> (Option<String>, String) {
    if let Some(a) = alias {
        return (None, a.clone());
    }
    match expr {
        AstExpr::Column { qualifier, name } => (qualifier.clone(), name.clone()),
        AstExpr::Function { name, .. } => (None, name.clone()),
        _ => (None, format!("_col{position}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::sql::parse_statement;
    use crate::sql::Statement;
    use crate::storage::{ColumnDef, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let cfg = EngineConfig::test_small();
        cat.create_table(
            "facts",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("a", DataType::Float),
                ColumnDef::new("b", DataType::Float),
            ])
            .unwrap(),
            &cfg,
        )
        .unwrap();
        cat.create_table(
            "model",
            Schema::new(vec![
                ColumnDef::new("layer", DataType::Int),
                ColumnDef::new("node", DataType::Int),
                ColumnDef::new("w_i", DataType::Float),
            ])
            .unwrap(),
            &cfg,
        )
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let cat = catalog();
        let binder = Binder::new(&cat);
        match parse_statement(sql)? {
            Statement::Select(s) => binder.bind_select(&s),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn binds_simple_projection() {
        let plan = bind("SELECT id, a + b AS s FROM facts WHERE id > 1").unwrap();
        let schema = plan.schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.fields[0].name, "id");
        assert_eq!(schema.fields[1].name, "s");
        assert_eq!(schema.fields[1].dtype, DataType::Float);
    }

    #[test]
    fn wildcard_expansion() {
        let plan = bind("SELECT * FROM facts").unwrap();
        assert_eq!(plan.schema().len(), 3);
        let plan = bind("SELECT f.* FROM facts AS f, model AS m").unwrap();
        assert_eq!(plan.schema().len(), 3);
        assert!(bind("SELECT x.* FROM facts").is_err());
    }

    #[test]
    fn cross_join_schema_and_qualified_resolution() {
        let plan = bind("SELECT f.id, m.node FROM facts f, model m WHERE f.id = m.node").unwrap();
        assert_eq!(plan.schema().len(), 2);
    }

    #[test]
    fn unknown_names_error() {
        assert!(bind("SELECT nosuch FROM facts").is_err());
        assert!(bind("SELECT id FROM nosuch").is_err());
        assert!(bind("SELECT nosuchfunc(id) FROM facts").is_err());
    }

    #[test]
    fn aggregate_binding() {
        let plan = bind(
            "SELECT id, SUM(a * b) AS s, COUNT(*) AS n, SUM(a*b) / COUNT(*) AS r \
             FROM facts GROUP BY id",
        )
        .unwrap();
        // Project over Aggregate.
        let LogicalPlan::Project { input, exprs, schema } = &plan else {
            panic!("expected project")
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Aggregate { .. }));
        let LogicalPlan::Aggregate { aggs, group, .. } = input.as_ref() else { panic!() };
        assert_eq!(group.len(), 1);
        // SUM(a*b) deduplicated.
        assert_eq!(aggs.len(), 2);
        assert_eq!(exprs.len(), 4);
        assert_eq!(schema.fields[1].name, "s");
        assert_eq!(schema.fields[2].dtype, DataType::Int);
    }

    #[test]
    fn group_expr_reuse_in_projection() {
        let plan = bind("SELECT id + 1, COUNT(*) FROM facts GROUP BY id + 1").unwrap();
        let LogicalPlan::Project { exprs, .. } = &plan else { panic!() };
        // `id + 1` in the projection resolves to group column 0.
        assert_eq!(exprs[0], Expr::Column(0));
    }

    #[test]
    fn non_grouped_column_is_rejected() {
        let err = bind("SELECT a, COUNT(*) FROM facts GROUP BY id").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn nested_aggregates_rejected() {
        assert!(bind("SELECT SUM(SUM(a)) FROM facts").is_err());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(bind("SELECT id FROM facts WHERE SUM(a) > 1").is_err());
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let plan = bind("SELECT COUNT(*), SUM(a) FROM facts").unwrap();
        let LogicalPlan::Project { input, .. } = &plan else { panic!() };
        let LogicalPlan::Aggregate { group, aggs, .. } = input.as_ref() else { panic!() };
        assert!(group.is_empty());
        assert_eq!(aggs.len(), 2);
    }

    #[test]
    fn subquery_requalification() {
        let plan =
            bind("SELECT t.s FROM (SELECT id, a + b AS s FROM facts) AS t WHERE t.id > 0").unwrap();
        assert_eq!(plan.schema().fields[0].name, "s");
    }

    #[test]
    fn order_by_position_and_name() {
        let plan = bind("SELECT id, a FROM facts ORDER BY 2 DESC, id").unwrap();
        let LogicalPlan::Sort { keys, .. } = &plan else { panic!("expected sort") };
        assert_eq!(keys[0].0, Expr::Column(1));
        assert!(!keys[0].1);
        assert_eq!(keys[1].0, Expr::Column(0));
        assert!(bind("SELECT id FROM facts ORDER BY 5").is_err());
    }

    #[test]
    fn between_desugars_to_range() {
        let plan = bind("SELECT id FROM facts WHERE id BETWEEN 2 AND 4").unwrap();
        let s = plan.display_indent();
        assert!(s.contains(">= 2") && s.contains("<= 4"), "{s}");
    }

    #[test]
    fn simple_case_desugars_to_equality() {
        let plan = bind("SELECT CASE id WHEN 1 THEN a ELSE b END FROM facts").unwrap();
        let s = plan.display_indent();
        assert!(s.contains("WHEN (#0 = 1)"), "{s}");
    }

    #[test]
    fn negative_literal_folds() {
        let plan = bind("SELECT id FROM facts WHERE id = -1").unwrap();
        let s = plan.display_indent();
        assert!(s.contains("= -1"), "{s}");
    }

    #[test]
    fn select_without_from() {
        let plan = bind("SELECT 1 + 2 AS three").unwrap();
        let LogicalPlan::Project { input, .. } = &plan else { panic!() };
        assert!(matches!(input.as_ref(), LogicalPlan::Values { .. }));
    }

    #[test]
    fn const_eval_for_insert() {
        let cat = catalog();
        let b = Binder::new(&cat);
        assert_eq!(b.eval_const(&AstExpr::Number("3".into())).unwrap(), Value::Int(3));
        let neg =
            AstExpr::Unary { op: UnaryOp::Neg, expr: Box::new(AstExpr::Number("2.5".into())) };
        assert_eq!(b.eval_const(&neg).unwrap(), Value::Float(-2.5));
        assert!(b.eval_const(&AstExpr::col("id")).is_err());
    }
}
