//! Logical planning: name binding and rule-based optimization.

pub mod binder;
pub mod logical;
pub mod optimizer;

pub use binder::Binder;
pub use logical::{AggFunc, AggSpec, LogicalPlan, PlanField, PlanSchema};
pub use optimizer::Optimizer;
