//! The engine's persistent storage layer: column-chunk paging, WAL
//! record payloads, the page directory, checkpointing, and ARIES-lite
//! redo recovery.
//!
//! The byte-moving machinery (pages, buffer pool, WAL framing, group
//! commit) lives in the `storage` crate; this module gives those bytes
//! meaning. Persistent mode is enabled by
//! [`crate::config::EngineConfig::data_dir`]; the layout under that root
//! is
//!
//! ```text
//! data.idb        paged column chunks, read through the buffer pool
//! wal.log         committed DDL + DML since the last checkpoint
//! directory.bin   checkpointed table layouts + page allocator + LSN
//! ```
//!
//! **Logging and recovery model.** Tables are append-only (plus CREATE /
//! DROP / unique-column declarations), so the WAL is *logical redo
//! only*: each committed statement is one record group, and recovery
//! rebuilds the checkpointed directory and then re-applies every
//! committed record with `lsn > checkpoint_lsn` through the normal
//! (non-logging) engine paths. Pages written after a checkpoint are not
//! referenced by the durable directory, so a crash simply makes them
//! invisible; replay rewrites their contents at freshly allocated page
//! ids. Statement ordering is anchored by per-table append locks — WAL
//! order equals publish order — which makes replay deterministic and the
//! recovered engine bit-identical to an engine that executed exactly the
//! committed statement prefix.
//!
//! **Checkpoint.** Holds the environment-wide DML lock exclusively
//! (appends and DDL hold it shared), flushes every dirty pool frame,
//! writes `directory.bin` atomically (temp file + fsync + rename), then
//! truncates the WAL. LSNs keep counting across resets so a crash
//! between the directory rename and the WAL reset replays nothing twice.
//!
//! **Space reclamation.** Page allocation prefers a persisted free list:
//! `DROP TABLE` returns a table's pages to it (deferred to `COMMIT`
//! inside a transaction so `ROLLBACK` can reinstall the table), and
//! every open recomputes it as "allocated minus live" after replay, which
//! also reclaims orphans left by crash-torn appends. `VACUUM` rebuilds
//! the data file: live chunks are copied into a fresh generation file
//! (`data.idb` is generation 0, `data.idb.<n>` after n vacuums) under a
//! full quiesce, the buffer pool is swapped onto it, and the old file is
//! deleted after the directory + WAL reach their post-vacuum state. A
//! crash anywhere inside a vacuum loses nothing: the directory rename is
//! the atomic switch point, and stale generation files are swept on the
//! next open.
//!
//! **Multi-statement transactions.** `BEGIN` records the WAL offset and
//! opens a logical-undo log shared by the catalog and every table.
//! Statements inside the transaction append their WAL records *without*
//! the commit marker, so the committed-prefix scan already recovers a
//! crashed transaction to the last `COMMIT` with no new record kinds.
//! `COMMIT` seals the whole group with one marker (+ group fsync);
//! `ROLLBACK` applies the undo log in reverse (truncate appends, drop
//! created tables, reinstall dropped ones) and truncates the WAL back to
//! the `BEGIN` offset.

use crate::catalog::Catalog;
use crate::column::ColumnVector;
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::storage::{BlockMeta, ColumnDef, PartitionMeta, Schema, Table};
use crate::types::{DataType, Value};
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use storage::file::PageFile;
use storage::page::{encode_page, pages_for, PAGE_SIZE, PAYLOAD_SIZE};
use storage::pool::BufferPool;
use storage::wal::{Wal, WalRecord};

/// WAL record kinds (the storage layer reserves 0xff for commit marks).
pub const REC_CREATE: u8 = 1;
pub const REC_DROP: u8 = 2;
pub const REC_APPEND: u8 = 3;
pub const REC_UNIQUE: u8 = 4;

const DIRECTORY_MAGIC: &[u8; 4] = b"IDBD";
/// v2 added the data-file generation and the free-page list (raw page
/// ids); v3 run-length encodes the free list as `(start, len)` pairs so
/// directory size is bounded by fragmentation, not freed-page count.
/// Both older formats still decode.
const DIRECTORY_VERSION: u8 = 3;

/// File name of data generation `gen`: generation 0 keeps the original
/// `data.idb` name, later generations (one per completed vacuum) get a
/// numeric suffix.
fn data_file_name(gen: u64) -> String {
    if gen == 0 {
        "data.idb".to_string()
    } else {
        format!("data.idb.{gen}")
    }
}

/// Parse a root-directory file name back to a data-file generation.
fn parse_data_file_gen(name: &str) -> Option<u64> {
    if name == "data.idb" {
        return Some(0);
    }
    name.strip_prefix("data.idb.")?.parse().ok()
}

/// Total pages covered by a free-run list.
fn run_total(runs: &[(u64, u64)]) -> u64 {
    runs.iter().map(|&(_, len)| len).sum()
}

/// Collapse arbitrary page ids (any order, duplicates tolerated) into
/// sorted disjoint `(start, len)` runs.
fn runs_from_pages(mut pages: Vec<u64>) -> Vec<(u64, u64)> {
    pages.sort_unstable();
    pages.dedup();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for p in pages {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == p => *len += 1,
            _ => runs.push((p, 1)),
        }
    }
    runs
}

/// Union of two sorted disjoint run lists, coalescing overlapping and
/// adjacent runs (re-freeing an already-free page is tolerated).
fn union_runs(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i].0 <= b[j].0);
        let (start, len) = if take_a {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        match out.last_mut() {
            Some((s, l)) if start <= *s + *l => *l = (*l).max(start + len - *s),
            _ => out.push((start, len)),
        }
    }
    out
}

/// A column chunk's location in the data file: `pages` consecutive pages
/// starting at `first_page`, holding `bytes` of serialized column data
/// covering `rows` rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagedChunk {
    pub first_page: u64,
    pub pages: u32,
    pub bytes: u64,
    pub rows: u32,
}

// ---------------------------------------------------------------------
// Multi-statement transaction state (logical undo).
// ---------------------------------------------------------------------

/// One logical undo action, recorded (in statement order) while a
/// transaction is open and applied in reverse by `ROLLBACK`.
pub(crate) enum UndoRecord {
    /// Undo a CREATE TABLE: remove it (and free any pages it grew).
    Create { name: String },
    /// Undo a DROP TABLE: reinstall the retained table. `pages` is the
    /// table's page footprint at drop time — freed at COMMIT, discarded
    /// (the table lives on) at ROLLBACK.
    Drop { table: Arc<Table>, pages: Vec<u64> },
    /// Undo an append: truncate each partition back to its pre-append
    /// (block count, row count) and restore the round-robin cursor.
    Append { name: String, parts: Vec<(usize, usize)>, next_partition: usize },
    /// Undo a unique-column declaration.
    Unique { name: String, column: String },
}

/// An open transaction: where the WAL stood at `BEGIN` (the rollback
/// truncation point) plus the undo log.
pub(crate) struct OpenTxn {
    pub(crate) wal_offset: u64,
    pub(crate) undo: Vec<UndoRecord>,
}

/// Engine-wide transaction state, shared by the catalog and every table
/// it owns (in-memory tables too — `BEGIN`/`ROLLBACK` work without a
/// data directory; only WAL truncation is persistent-only).
#[derive(Default)]
pub(crate) struct TxnState {
    pub(crate) inner: Mutex<Option<OpenTxn>>,
}

impl TxnState {
    pub(crate) fn is_open(&self) -> bool {
        self.inner.lock().is_some()
    }

    /// Push an undo record if a transaction is open; returns whether the
    /// statement joined one.
    pub(crate) fn record(&self, undo: impl FnOnce() -> UndoRecord) -> bool {
        let mut guard = self.inner.lock();
        match guard.as_mut() {
            Some(open) => {
                open.undo.push(undo());
                true
            }
            None => false,
        }
    }
}

/// One engine's persistent environment: the buffer pool and WAL over a
/// data directory, the page allocator, and the replay/checkpoint state
/// threaded through every table the catalog owns.
pub struct StorageEnv {
    root: PathBuf,
    pool: BufferPool,
    wal: Wal,
    /// Next never-allocated page id; the allocator prefers `free`.
    next_page: AtomicU64,
    /// Freed page runs `(start, len)`, kept sorted, disjoint, and
    /// coalesced: allocation (first fit) stays deterministic under WAL
    /// replay, and memory/disk cost is bounded by fragmentation rather
    /// than freed-page count.
    free: Mutex<Vec<(u64, u64)>>,
    /// Data-file generation: 0 until the first vacuum, +1 per vacuum.
    generation: AtomicU64,
    /// Records with `lsn <= checkpoint_lsn` are reflected in the
    /// directory and must not be replayed.
    checkpoint_lsn: AtomicU64,
    /// Set while recovery replays the WAL: DDL/DML skip logging.
    replaying: AtomicBool,
    /// Shared by DML and DDL, exclusive for checkpoint / vacuum /
    /// COMMIT / ROLLBACK: the exclusive holders observe no in-flight
    /// statement.
    pub(crate) dml_lock: RwLock<()>,
}

impl StorageEnv {
    /// The buffer pool (tests and benchmarks read its occupancy).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    pub(crate) fn is_replaying(&self) -> bool {
        self.replaying.load(Ordering::Acquire)
    }

    /// Path of the current data file (generation-dependent).
    pub fn data_path(&self) -> PathBuf {
        self.root.join(data_file_name(self.generation.load(Ordering::Acquire)))
    }

    /// Pages currently on the free list (tests assert reclamation).
    pub fn free_page_count(&self) -> usize {
        run_total(&self.free.lock()) as usize
    }

    /// Reserve `n` consecutive pages, preferring the first free run that
    /// fits (so replay re-allocates identically); falls back to growing
    /// the file. Returns the first page id.
    pub(crate) fn allocate_pages(&self, n: usize) -> u64 {
        if n > 0 {
            let mut free = self.free.lock();
            if let Some(i) = free.iter().position(|&(_, len)| len >= n as u64) {
                let (start, len) = free[i];
                if len == n as u64 {
                    free.remove(i);
                } else {
                    free[i] = (start + n as u64, len - n as u64);
                }
                obs::metrics::STORAGE_PAGES_REUSED.add(n as u64);
                obs::metrics::STORAGE_FREE_PAGES.set(run_total(&free) as i64);
                return start;
            }
        }
        self.next_page.fetch_add(n as u64, Ordering::Relaxed)
    }

    /// Return pages to the free list (DROP TABLE, rollback truncation).
    /// Duplicates — within the batch or against already-free pages — are
    /// tolerated and collapsed.
    pub(crate) fn free_pages(&self, pages: impl IntoIterator<Item = u64>) {
        let incoming = runs_from_pages(pages.into_iter().collect());
        if incoming.is_empty() {
            return;
        }
        let mut free = self.free.lock();
        let before = run_total(&free);
        *free = union_runs(&free, &incoming);
        let after = run_total(&free);
        obs::metrics::STORAGE_PAGES_FREED.add(after - before);
        obs::metrics::STORAGE_FREE_PAGES.set(after as i64);
    }

    /// Replace the free list wholesale (the open-time orphan GC, which
    /// recomputes it as allocated-minus-live).
    pub(crate) fn set_free_runs(&self, runs: Vec<(u64, u64)>) {
        let total = run_total(&runs);
        let mut free = self.free.lock();
        let before = run_total(&free);
        *free = runs;
        obs::metrics::STORAGE_PAGES_FREED.add(total.saturating_sub(before));
        obs::metrics::STORAGE_FREE_PAGES.set(total as i64);
    }

    /// Log one statement as a committed record group: the record, its
    /// commit marker, then a (group-batched) fsync up to the marker.
    pub(crate) fn log_committed(&self, kind: u8, payload: &[u8]) -> Result<()> {
        self.wal.append(kind, payload)?;
        let (_, end) = self.wal.append_commit()?;
        self.wal.commit(end)?;
        Ok(())
    }

    /// Log one statement, transaction-aware: inside an open transaction
    /// the record is appended *without* a commit marker (the group stays
    /// open until `COMMIT`) and `undo` is pushed onto the undo log, both
    /// under one txn-lock hold so the WAL and the undo log never
    /// disagree. Outside a transaction this is `log_committed`. Returns
    /// whether the statement joined an open transaction.
    pub(crate) fn log_statement(
        &self,
        txn: &TxnState,
        kind: u8,
        payload: &[u8],
        undo: impl FnOnce() -> UndoRecord,
    ) -> Result<bool> {
        let mut guard = txn.inner.lock();
        match guard.as_mut() {
            Some(open) => {
                self.wal.append(kind, payload)?;
                open.undo.push(undo());
                Ok(true)
            }
            None => {
                drop(guard);
                self.log_committed(kind, payload)?;
                Ok(false)
            }
        }
    }

    /// Seal the current (transaction-spanning) record group with one
    /// commit marker and group-fsync it — the durability point of
    /// `COMMIT`.
    pub(crate) fn seal_group(&self) -> Result<()> {
        let (_, end) = self.wal.append_commit()?;
        self.wal.commit(end)?;
        Ok(())
    }

    /// Truncate the WAL back to `offset` — the `ROLLBACK` erase of the
    /// open transaction's record group.
    pub(crate) fn truncate_wal_to(&self, offset: u64) -> Result<()> {
        self.wal.truncate_to(offset)?;
        Ok(())
    }

    /// End-of-log byte offset — the crash-recovery tests record this
    /// after each statement to build their committed-prefix oracle.
    pub fn wal_size(&self) -> u64 {
        self.wal.size()
    }

    /// Serialize-side of a column chunk: write `bytes` across
    /// consecutive pages through the pool, returning its location.
    pub(crate) fn write_chunk(&self, bytes: &[u8], rows: usize) -> Result<PagedChunk> {
        let pages = pages_for(bytes.len()).max(1);
        let first_page = self.allocate_pages(pages);
        for i in 0..pages {
            let start = i * PAYLOAD_SIZE;
            let end = ((i + 1) * PAYLOAD_SIZE).min(bytes.len());
            self.pool.write_page(first_page + i as u64, &bytes[start..end])?;
        }
        Ok(PagedChunk {
            first_page,
            pages: pages as u32,
            bytes: bytes.len() as u64,
            rows: rows as u32,
        })
    }

    /// Read a chunk back through the pool (at most one page pinned at a
    /// time, so scans run in bounded pool memory).
    pub(crate) fn read_chunk(&self, chunk: &PagedChunk) -> Result<Vec<u8>> {
        let mut bytes = Vec::with_capacity(chunk.bytes as usize);
        for i in 0..chunk.pages as u64 {
            let page = self.pool.fetch(chunk.first_page + i)?;
            bytes.extend_from_slice(page.payload());
        }
        if bytes.len() != chunk.bytes as usize {
            return Err(EngineError::Io(format!(
                "chunk at page {} expected {} bytes, pages held {}",
                chunk.first_page,
                chunk.bytes,
                bytes.len()
            )));
        }
        Ok(bytes)
    }
}

// ---------------------------------------------------------------------
// Codec: little-endian, length-prefixed, self-describing value tags.
// ---------------------------------------------------------------------

/// Bounds-checked reader over a decode buffer; every overrun is a
/// corruption error, never a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(EngineError::Io(format!(
                "corrupt record: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EngineError::Io("corrupt record: non-utf8 string".into()))
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Bool => 2,
        DataType::Str => 3,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Bool),
        3 => Ok(DataType::Str),
        other => Err(EngineError::Io(format!("corrupt record: dtype tag {other}"))),
    }
}

pub(crate) fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Bool(x) => {
            out.push(2);
            out.push(*x as u8);
        }
        Value::Str(x) => {
            out.push(3);
            put_str(out, x);
        }
    }
}

pub(crate) fn decode_value(r: &mut Reader) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Float(r.f64()?)),
        2 => Ok(Value::Bool(r.u8()? != 0)),
        3 => Ok(Value::Str(r.str()?)),
        other => Err(EngineError::Io(format!("corrupt record: value tag {other}"))),
    }
}

pub(crate) fn encode_column(out: &mut Vec<u8>, col: &ColumnVector) {
    out.push(dtype_tag(col.data_type()));
    out.extend_from_slice(&(col.len() as u32).to_le_bytes());
    match col {
        ColumnVector::Int(v) => {
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnVector::Float(v) => {
            for x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        ColumnVector::Bool(v) => out.extend(v.iter().map(|&b| b as u8)),
        ColumnVector::Str(v) => {
            for s in v {
                put_str(out, s);
            }
        }
    }
}

pub(crate) fn decode_column(r: &mut Reader) -> Result<ColumnVector> {
    let dtype = tag_dtype(r.u8()?)?;
    let len = r.u32()? as usize;
    Ok(match dtype {
        DataType::Int => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.i64()?);
            }
            ColumnVector::Int(v)
        }
        DataType::Float => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.f64()?);
            }
            ColumnVector::Float(v)
        }
        DataType::Bool => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.u8()? != 0);
            }
            ColumnVector::Bool(v)
        }
        DataType::Str => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.str()?);
            }
            ColumnVector::Str(v)
        }
    })
}

fn encode_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for col in schema.columns() {
        put_str(out, &col.name);
        out.push(dtype_tag(col.dtype));
    }
}

fn decode_schema(r: &mut Reader) -> Result<Schema> {
    let n = r.u32()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dtype = tag_dtype(r.u8()?)?;
        cols.push(ColumnDef::new(name, dtype));
    }
    Schema::new(cols)
}

fn encode_chunk(out: &mut Vec<u8>, chunk: &PagedChunk) {
    out.extend_from_slice(&chunk.first_page.to_le_bytes());
    out.extend_from_slice(&chunk.pages.to_le_bytes());
    out.extend_from_slice(&chunk.bytes.to_le_bytes());
    out.extend_from_slice(&chunk.rows.to_le_bytes());
}

fn decode_chunk(r: &mut Reader) -> Result<PagedChunk> {
    Ok(PagedChunk { first_page: r.u64()?, pages: r.u32()?, bytes: r.u64()?, rows: r.u32()? })
}

// ---------------------------------------------------------------------
// WAL record payloads.
// ---------------------------------------------------------------------

pub(crate) fn encode_create(
    name: &str,
    schema: &Schema,
    partitions: usize,
    vector_size: usize,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, name);
    encode_schema(&mut out, schema);
    out.extend_from_slice(&(partitions as u32).to_le_bytes());
    out.extend_from_slice(&(vector_size as u32).to_le_bytes());
    out
}

pub(crate) fn encode_drop(name: &str) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, name);
    out
}

pub(crate) fn encode_append(name: &str, columns: &[ColumnVector]) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, name);
    out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
    for col in columns {
        encode_column(&mut out, col);
    }
    out
}

pub(crate) fn encode_unique(name: &str, column: &str) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, name);
    put_str(&mut out, column);
    out
}

// ---------------------------------------------------------------------
// Directory (checkpoint image of the catalog + allocator + LSN).
// ---------------------------------------------------------------------

struct DirectoryFile {
    next_page: u64,
    checkpoint_lsn: u64,
    generation: u64,
    free: Vec<(u64, u64)>,
    tables: Vec<TableEntry>,
}

struct TableEntry {
    name: String,
    schema: Schema,
    vector_size: usize,
    next_partition: u64,
    unique_columns: Vec<usize>,
    partitions: Vec<PartitionMeta>,
}

fn encode_directory(catalog: &Catalog, env: &StorageEnv, checkpoint_lsn: u64) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(DIRECTORY_MAGIC);
    out.push(DIRECTORY_VERSION);
    out.extend_from_slice(&env.next_page.load(Ordering::Acquire).to_le_bytes());
    out.extend_from_slice(&checkpoint_lsn.to_le_bytes());
    out.extend_from_slice(&env.generation.load(Ordering::Acquire).to_le_bytes());
    {
        let free = env.free.lock();
        out.extend_from_slice(&(free.len() as u32).to_le_bytes());
        for &(start, len) in free.iter() {
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
    }
    let names = catalog.table_names();
    out.extend_from_slice(&(names.len() as u32).to_le_bytes());
    for name in names {
        let table = catalog.table(&name)?;
        put_str(&mut out, &name);
        encode_schema(&mut out, table.schema());
        out.extend_from_slice(&(table.vector_size() as u32).to_le_bytes());
        let (next_partition, uniques, parts) = table.checkpoint_meta()?;
        out.extend_from_slice(&next_partition.to_le_bytes());
        out.extend_from_slice(&(uniques.len() as u32).to_le_bytes());
        for u in &uniques {
            out.extend_from_slice(&(*u as u32).to_le_bytes());
        }
        out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
        for part in &parts {
            out.extend_from_slice(&(part.rows as u64).to_le_bytes());
            out.extend_from_slice(&(part.columns.len() as u32).to_le_bytes());
            for blocks in &part.columns {
                out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for meta in blocks {
                    encode_chunk(&mut out, &meta.chunk);
                    encode_value(&mut out, &meta.min);
                    encode_value(&mut out, &meta.max);
                }
            }
        }
    }
    Ok(out)
}

fn decode_directory(bytes: &[u8]) -> Result<DirectoryFile> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != DIRECTORY_MAGIC {
        return Err(EngineError::Io("directory.bin: bad magic".into()));
    }
    let version = r.u8()?;
    if version == 0 || version > DIRECTORY_VERSION {
        return Err(EngineError::Io(format!("directory.bin: unknown version {version}")));
    }
    let next_page = r.u64()?;
    let checkpoint_lsn = r.u64()?;
    // v1 predates reclamation: generation 0, nothing free. v2 stored
    // the free list as raw page ids; v3 as `(start, len)` runs.
    let (generation, free) = if version >= 3 {
        let generation = r.u64()?;
        let nruns = r.u32()? as usize;
        let mut free = Vec::with_capacity(nruns);
        for _ in 0..nruns {
            let start = r.u64()?;
            let len = r.u64()?;
            free.push((start, len));
        }
        (generation, free)
    } else if version == 2 {
        let generation = r.u64()?;
        let nfree = r.u32()? as usize;
        let mut pages = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            pages.push(r.u64()?);
        }
        (generation, runs_from_pages(pages))
    } else {
        (0, Vec::new())
    };
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let schema = decode_schema(&mut r)?;
        let vector_size = r.u32()? as usize;
        let next_partition = r.u64()?;
        let nunique = r.u32()? as usize;
        let mut unique_columns = Vec::with_capacity(nunique);
        for _ in 0..nunique {
            unique_columns.push(r.u32()? as usize);
        }
        let nparts = r.u32()? as usize;
        let mut partitions = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let rows = r.u64()? as usize;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let nblocks = r.u32()? as usize;
                let mut blocks = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    let chunk = decode_chunk(&mut r)?;
                    let min = decode_value(&mut r)?;
                    let max = decode_value(&mut r)?;
                    blocks.push(BlockMeta { chunk, min, max });
                }
                columns.push(blocks);
            }
            partitions.push(PartitionMeta { rows, columns });
        }
        tables.push(TableEntry {
            name,
            schema,
            vector_size,
            next_partition,
            unique_columns,
            partitions,
        });
    }
    if !r.is_empty() {
        return Err(EngineError::Io("directory.bin: trailing garbage".into()));
    }
    Ok(DirectoryFile { next_page, checkpoint_lsn, generation, free, tables })
}

// ---------------------------------------------------------------------
// Open / recovery / checkpoint.
// ---------------------------------------------------------------------

fn io(e: std::io::Error) -> EngineError {
    EngineError::Io(format!("storage io error: {e}"))
}

/// Open (or create) the persistent environment under `root` and return a
/// catalog recovered to the committed statement prefix: the checkpointed
/// directory is rebuilt first, then every committed WAL record with
/// `lsn > checkpoint_lsn` is replayed through the normal engine paths.
pub(crate) fn open_catalog(root: &Path, config: &EngineConfig) -> Result<Arc<Catalog>> {
    std::fs::create_dir_all(root).map_err(io)?;
    let dir_path = root.join("directory.bin");
    let directory = match std::fs::read(&dir_path) {
        Ok(bytes) => Some(decode_directory(&bytes)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io(e)),
    };
    let (next_page, checkpoint_lsn, generation, free) =
        directory.as_ref().map_or((0, 0, 0, Vec::new()), |d| {
            (d.next_page, d.checkpoint_lsn, d.generation, d.free.clone())
        });

    // Sweep stale data generations: a crash inside a vacuum leaves
    // either a half-written next-generation file (directory still names
    // the old one) or the superseded old file (directory already names
    // the new one). Only the generation the directory names is live.
    for entry in std::fs::read_dir(root).map_err(io)? {
        let entry = entry.map_err(io)?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_data_file_gen) {
            if gen != generation {
                std::fs::remove_file(entry.path()).map_err(io)?;
            }
        }
    }

    let pool = BufferPool::open(&root.join(data_file_name(generation)), config.buffer_pool_pages)?;
    let (wal, records) = Wal::open(&root.join("wal.log"), config.wal_fsync, checkpoint_lsn)?;
    let env = Arc::new(StorageEnv {
        root: root.to_path_buf(),
        pool,
        wal,
        next_page: AtomicU64::new(next_page),
        free: Mutex::new(free),
        generation: AtomicU64::new(generation),
        checkpoint_lsn: AtomicU64::new(checkpoint_lsn),
        replaying: AtomicBool::new(true),
        dml_lock: RwLock::new(()),
    });
    let catalog = Arc::new(Catalog::with_env(Some(Arc::clone(&env))));

    if let Some(dir) = directory {
        for entry in dir.tables {
            let table = Table::restore(
                &entry.name,
                entry.schema,
                entry.vector_size,
                entry.partitions,
                entry.next_partition,
                entry.unique_columns,
                catalog.epoch_handle(),
                Arc::clone(&env),
                Arc::clone(catalog.txn_state()),
            );
            catalog.install_restored(Arc::new(table));
        }
    }

    for record in &records {
        if record.lsn <= checkpoint_lsn {
            continue;
        }
        apply_record(&catalog, config, record)?;
        obs::metrics::STORAGE_RECOVERY_RECORDS_REPLAYED.add(1);
    }
    env.replaying.store(false, Ordering::Release);

    // Orphan GC: recompute the free list as allocated-minus-live, built
    // as the runs between consecutive live pages so cost is O(live),
    // not O(next_page), even when a huge DROP freed most of the file.
    // This reclaims pages of tables dropped before reclamation existed
    // and of appends torn by a crash, and subsumes the checkpointed
    // list.
    let mut live: Vec<u64> = Vec::new();
    for name in catalog.table_names() {
        live.extend(catalog.table(&name)?.all_pages());
    }
    live.sort_unstable();
    live.dedup();
    let end = env.next_page.load(Ordering::Acquire);
    let mut orphaned: Vec<(u64, u64)> = Vec::new();
    let mut cursor = 0u64;
    for &p in &live {
        if p >= end {
            break;
        }
        if p > cursor {
            orphaned.push((cursor, p - cursor));
        }
        cursor = p + 1;
    }
    if cursor < end {
        orphaned.push((cursor, end - cursor));
    }
    env.set_free_runs(orphaned);
    Ok(catalog)
}

/// Redo one committed WAL record through the normal engine paths (the
/// environment's `replaying` flag suppresses re-logging).
fn apply_record(catalog: &Catalog, config: &EngineConfig, record: &WalRecord) -> Result<()> {
    let mut r = Reader::new(&record.payload);
    match record.kind {
        REC_CREATE => {
            let name = r.str()?;
            let schema = decode_schema(&mut r)?;
            let partitions = r.u32()? as usize;
            let vector_size = r.u32()? as usize;
            // Layout comes from the record, not the current config, so a
            // recovered table is bit-identical to its pre-crash self even
            // if the knobs changed between runs.
            let layout = EngineConfig { partitions, vector_size, ..config.clone() };
            catalog.create_table(&name, schema, &layout)?;
        }
        REC_DROP => {
            catalog.drop_table(&r.str()?, false)?;
        }
        REC_APPEND => {
            let name = r.str()?;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(decode_column(&mut r)?);
            }
            catalog.table(&name)?.append(columns)?;
        }
        REC_UNIQUE => {
            let name = r.str()?;
            let column = r.str()?;
            catalog.table(&name)?.declare_unique(&column)?;
        }
        other => return Err(EngineError::Io(format!("wal: unknown record kind {other}"))),
    }
    Ok(())
}

/// Atomically replace `directory.bin` with the catalog's current image:
/// temp file + fsync + rename + parent-directory fsync. Every error —
/// including the parent fsync, without which the rename itself may not
/// survive a power failure — propagates to the caller, which must then
/// *not* discard the WAL that could redo the checkpointed state.
fn write_directory(catalog: &Catalog, env: &StorageEnv, checkpoint_lsn: u64) -> Result<()> {
    let bytes = encode_directory(catalog, env, checkpoint_lsn)?;
    let tmp = env.root.join("directory.tmp");
    let final_path = env.root.join("directory.bin");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(&bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, &final_path).map_err(io)?;
    let d = std::fs::File::open(&env.root).map_err(io)?;
    d.sync_all().map_err(io)?;
    Ok(())
}

/// Checkpoint the catalog: flush dirty pages, atomically replace the
/// directory, truncate the WAL. No-op for in-memory catalogs. Errors
/// while a transaction is open — a checkpoint would make uncommitted
/// statements durable and discard the WAL prefix `ROLLBACK` truncates.
pub(crate) fn checkpoint(catalog: &Catalog) -> Result<()> {
    let Some(env) = catalog.env() else {
        return Ok(());
    };
    // Exclusive against every DML/DDL statement: nothing moves between
    // the pool flush, the directory image, and the WAL truncation.
    let _excl = env.dml_lock.write();
    if catalog.txn_state().is_open() {
        return Err(EngineError::Execution(
            "cannot checkpoint while a transaction is open; COMMIT or ROLLBACK first".into(),
        ));
    }
    let checkpoint_lsn = env.wal.next_lsn().saturating_sub(1);
    env.pool.flush_all()?;
    write_directory(catalog, env, checkpoint_lsn)?;
    env.checkpoint_lsn.store(checkpoint_lsn, Ordering::Release);
    env.wal.reset()?;
    obs::metrics::STORAGE_CHECKPOINTS.add(1);
    Ok(())
}

/// Rebuild the data file, reclaiming all dead space: copy every live
/// chunk into a fresh generation file, swap the buffer pool onto it,
/// checkpoint the post-vacuum state, and delete the old file. Runs under
/// the exclusive DML lock *and* every table's partition write lock, so
/// no scan holds a pin into the old file across the swap (block reads
/// happen under the partition read lock). No-op for in-memory catalogs.
///
/// Crash safety: the directory rename inside the final checkpoint is the
/// atomic switch — before it, recovery sees the old directory + old file
/// (the half-built new generation is swept at open); after it, the new
/// directory + new file (the stale old generation is swept at open).
pub(crate) fn vacuum(catalog: &Catalog) -> Result<()> {
    let Some(env) = catalog.env() else {
        return Ok(());
    };
    let _excl = env.dml_lock.write();
    if catalog.txn_state().is_open() {
        return Err(EngineError::Execution(
            "cannot VACUUM while a transaction is open; COMMIT or ROLLBACK first".into(),
        ));
    }
    let names = catalog.table_names();
    let tables: std::result::Result<Vec<Arc<Table>>, _> =
        names.iter().map(|n| catalog.table(n)).collect();
    let tables = tables?;
    let mut guards: Vec<_> = tables.iter().map(|t| t.lock_partitions_exclusive()).collect();

    let old_path = env.data_path();
    let old_bytes = std::fs::metadata(&old_path).map(|m| m.len()).unwrap_or(0);
    let generation = env.generation.load(Ordering::Acquire) + 1;
    let new_path = env.root.join(data_file_name(generation));
    // A crash-orphaned file of this generation would have been swept at
    // open; anything here is leftover from a failed in-process vacuum.
    let _ = std::fs::remove_file(&new_path);
    let dst = PageFile::open(&new_path)?;

    // Pass 1: copy every live chunk into the new file at sequentially
    // allocated pages, collecting the relocations without touching the
    // in-memory tables — an IO error here aborts with all state intact.
    let mut next_page: u64 = 0;
    let mut moves: Vec<(usize, usize, usize, usize, PagedChunk)> = Vec::new();
    for (ti, guard) in guards.iter().enumerate() {
        for (pi, part) in guard.iter().enumerate() {
            for (ci, blocks) in part.columns().iter().enumerate() {
                for (bi, block) in blocks.iter().enumerate() {
                    let Some(chunk) = block.paged_chunk() else { continue };
                    let bytes = env.read_chunk(&chunk)?;
                    let pages = pages_for(bytes.len()).max(1);
                    for i in 0..pages {
                        let start = i * PAYLOAD_SIZE;
                        let end = ((i + 1) * PAYLOAD_SIZE).min(bytes.len());
                        let page_id = next_page + i as u64;
                        dst.write_page(page_id, &encode_page(page_id, &bytes[start..end]))?;
                    }
                    let moved = PagedChunk {
                        first_page: next_page,
                        pages: pages as u32,
                        bytes: chunk.bytes,
                        rows: chunk.rows,
                    };
                    next_page += pages as u64;
                    moves.push((ti, pi, ci, bi, moved));
                }
            }
        }
    }
    dst.sync()?;
    obs::metrics::STORAGE_VACUUM_PAGES_COPIED.add(next_page);

    // Pass 2: the copy is durable — apply the relocations and swap the
    // pool onto the new file while every reader is still locked out.
    for (ti, pi, ci, bi, moved) in moves {
        guards[ti][pi].columns_mut()[ci][bi].set_paged_chunk(moved);
    }
    env.pool.swap_file(&new_path)?;
    env.next_page.store(next_page, Ordering::Release);
    env.free.lock().clear();
    obs::metrics::STORAGE_FREE_PAGES.set(0);
    env.generation.store(generation, Ordering::Release);
    drop(guards);

    // Checkpoint the post-vacuum state (the directory rename is the
    // atomic switch to the new generation), then drop the old file.
    let checkpoint_lsn = env.wal.next_lsn().saturating_sub(1);
    write_directory(catalog, env, checkpoint_lsn)?;
    env.checkpoint_lsn.store(checkpoint_lsn, Ordering::Release);
    env.wal.reset()?;
    std::fs::remove_file(&old_path).map_err(io)?;
    obs::metrics::STORAGE_CHECKPOINTS.add(1);
    obs::metrics::STORAGE_VACUUM_RUNS.add(1);
    obs::metrics::STORAGE_VACUUM_BYTES_RECLAIMED
        .add(old_bytes.saturating_sub(next_page * PAGE_SIZE as u64));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_codec_round_trips_every_type() {
        let cols = [
            ColumnVector::Int(vec![-3, 0, i64::MAX]),
            ColumnVector::Float(vec![0.5, -1.25, f64::MIN_POSITIVE]),
            ColumnVector::Bool(vec![true, false, true]),
            ColumnVector::Str(vec!["".into(), "héllo".into(), "x".repeat(100)]),
        ];
        for col in &cols {
            let mut buf = Vec::new();
            encode_column(&mut buf, col);
            let mut r = Reader::new(&buf);
            assert_eq!(&decode_column(&mut r).unwrap(), col);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn value_codec_round_trips() {
        for v in [Value::Int(-7), Value::Float(2.5), Value::Bool(false), Value::Str("abc".into())] {
            let mut buf = Vec::new();
            encode_value(&mut buf, &v);
            assert_eq!(decode_value(&mut Reader::new(&buf)).unwrap(), v);
        }
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut buf = Vec::new();
        encode_column(&mut buf, &ColumnVector::Str(vec!["hello world".into()]));
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_column(&mut r).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn free_run_helpers_coalesce_dedup_and_union() {
        assert_eq!(runs_from_pages(vec![5, 3, 4, 9, 3, 11, 10]), vec![(3, 3), (9, 3)]);
        assert_eq!(runs_from_pages(Vec::new()), Vec::<(u64, u64)>::new());
        // Adjacent, overlapping, and duplicate runs all collapse.
        assert_eq!(
            union_runs(&[(0, 2), (10, 2)], &[(2, 3), (10, 2), (20, 1)]),
            vec![(0, 5), (10, 2), (20, 1)]
        );
        assert_eq!(union_runs(&[(0, 10)], &[(2, 3)]), vec![(0, 10)]);
        assert_eq!(run_total(&[(3, 3), (9, 2)]), 5);
    }

    #[test]
    fn directory_v2_raw_free_list_decodes_as_runs() {
        // Hand-build a v2 header (raw page-id free list, no tables).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(DIRECTORY_MAGIC);
        bytes.push(2);
        bytes.extend_from_slice(&99u64.to_le_bytes()); // next_page
        bytes.extend_from_slice(&7u64.to_le_bytes()); // checkpoint_lsn
        bytes.extend_from_slice(&1u64.to_le_bytes()); // generation
        let pages: [u64; 4] = [4, 5, 6, 9];
        bytes.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for p in pages {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ntables
        let dir = decode_directory(&bytes).unwrap();
        assert_eq!(dir.next_page, 99);
        assert_eq!(dir.checkpoint_lsn, 7);
        assert_eq!(dir.generation, 1);
        assert_eq!(dir.free, vec![(4, 3), (9, 1)]);
    }

    #[test]
    fn create_record_round_trips_layout() {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("w", DataType::Float),
        ])
        .unwrap();
        let payload = encode_create("t", &schema, 12, 1024);
        let mut r = Reader::new(&payload);
        assert_eq!(r.str().unwrap(), "t");
        let schema2 = decode_schema(&mut r).unwrap();
        assert_eq!(schema2, schema);
        assert_eq!(r.u32().unwrap(), 12);
        assert_eq!(r.u32().unwrap(), 1024);
        assert!(r.is_empty());
    }
}
