//! Table catalog.

use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::storage::{Schema, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe registry of tables. Table names are case-insensitive.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        config: &EngineConfig,
    ) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(EngineError::Catalog(format!("table {key:?} already exists")));
        }
        let table = Arc::new(Table::new(&key, schema, config));
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {key:?}")))
    }

    /// Drop a table; errors if missing unless `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let removed = self.tables.write().remove(&key).is_some();
        if !removed && !if_exists {
            return Err(EngineError::Catalog(format!("unknown table {key:?}")));
        }
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnDef;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("x", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        let cfg = EngineConfig::test_small();
        cat.create_table("Facts", schema(), &cfg).unwrap();
        assert!(cat.table("FACTS").is_ok());
        assert!(cat.create_table("facts", schema(), &cfg).is_err());
        assert_eq!(cat.table_names(), vec!["facts"]);
        cat.drop_table("facts", false).unwrap();
        assert!(cat.table("facts").is_err());
        assert!(cat.drop_table("facts", false).is_err());
        cat.drop_table("facts", true).unwrap();
    }
}
