//! Table catalog.

use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::persist::{self, StorageEnv};
use crate::storage::{Schema, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe registry of tables. Table names are case-insensitive.
///
/// The catalog carries a monotonic **epoch** counter ([`Catalog::version`])
/// bumped on every CREATE, DROP, and — because the counter is threaded into
/// each [`Table`] it creates — every INSERT. The epoch is the invalidation
/// primitive of the engine's plan cache: a cached plan stamped with epoch
/// `v` is replayed only while `version() == v`, so a plan can never outlive
/// a drop (or miss data changes) of any table it references.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    epoch: Arc<AtomicU64>,
    /// Persistent environment shared by every table; `None` for the
    /// (default) in-memory catalog.
    env: Option<Arc<StorageEnv>>,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::with_env(None)
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// A catalog whose DDL/DML is write-ahead logged through `env`.
    pub(crate) fn with_env(env: Option<Arc<StorageEnv>>) -> Catalog {
        Catalog { tables: RwLock::new(HashMap::new()), epoch: Arc::new(AtomicU64::new(0)), env }
    }

    pub(crate) fn env(&self) -> Option<&Arc<StorageEnv>> {
        self.env.as_ref()
    }

    /// The shared epoch counter (recovery threads it into rebuilt
    /// tables).
    pub(crate) fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Insert a table rebuilt from the checkpoint directory (recovery
    /// only: no WAL record, but the epoch still moves).
    pub(crate) fn install_restored(&self, table: Arc<Table>) {
        let mut tables = self.tables.write();
        tables.insert(table.name().to_string(), table);
        self.epoch.fetch_add(1, Ordering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
    }

    /// The catalog epoch: monotonic, bumped on CREATE / DROP / INSERT.
    pub fn version(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        config: &EngineConfig,
    ) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(EngineError::Catalog(format!("table {key:?} already exists")));
        }
        // Log before inserting (WAL order == catalog order; the tables
        // write lock serializes DDL), and skip logging during replay.
        if let Some(env) = &self.env {
            if !env.is_replaying() {
                let _dml = env.dml_lock.read();
                env.log_committed(
                    persist::REC_CREATE,
                    &persist::encode_create(
                        &key,
                        &schema,
                        config.partitions.max(1),
                        config.vector_size.max(1),
                    ),
                )?;
            }
        }
        let table = Arc::new(Table::with_storage(
            &key,
            schema,
            config,
            Arc::clone(&self.epoch),
            self.env.clone(),
        ));
        tables.insert(key, Arc::clone(&table));
        self.epoch.fetch_add(1, Ordering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
        Ok(table)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {key:?}")))
    }

    /// Drop a table; errors if missing unless `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let removed = {
            let mut tables = self.tables.write();
            if tables.contains_key(&key) {
                if let Some(env) = &self.env {
                    if !env.is_replaying() {
                        let _dml = env.dml_lock.read();
                        env.log_committed(persist::REC_DROP, &persist::encode_drop(&key))?;
                    }
                }
            }
            let removed = tables.remove(&key).is_some();
            if removed {
                self.epoch.fetch_add(1, Ordering::Release);
                obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
            }
            removed
        };
        if !removed && !if_exists {
            return Err(EngineError::Catalog(format!("unknown table {key:?}")));
        }
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnVector;
    use crate::storage::ColumnDef;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("x", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        let cfg = EngineConfig::test_small();
        cat.create_table("Facts", schema(), &cfg).unwrap();
        assert!(cat.table("FACTS").is_ok());
        assert!(cat.create_table("facts", schema(), &cfg).is_err());
        assert_eq!(cat.table_names(), vec!["facts"]);
        cat.drop_table("facts", false).unwrap();
        assert!(cat.table("facts").is_err());
        assert!(cat.drop_table("facts", false).is_err());
        cat.drop_table("facts", true).unwrap();
    }

    #[test]
    fn version_bumps_on_create_drop_insert() {
        let cat = Catalog::new();
        let cfg = EngineConfig::test_small();
        assert_eq!(cat.version(), 0);
        let t = cat.create_table("t", schema(), &cfg).unwrap();
        assert_eq!(cat.version(), 1);
        t.append(vec![ColumnVector::Int(vec![1, 2])]).unwrap();
        assert_eq!(cat.version(), 2, "DML through a catalog table bumps the epoch");
        cat.drop_table("t", false).unwrap();
        assert_eq!(cat.version(), 3);
        // Failed operations leave the epoch untouched.
        assert!(cat.drop_table("t", false).is_err());
        cat.drop_table("t", true).unwrap(); // if_exists no-op
        assert_eq!(cat.version(), 3);
    }
}
