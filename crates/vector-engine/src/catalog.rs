//! Table catalog.

use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::persist::{self, OpenTxn, StorageEnv, TxnState, UndoRecord};
use crate::storage::{Schema, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe registry of tables. Table names are case-insensitive.
///
/// The catalog carries a monotonic **epoch** counter ([`Catalog::version`])
/// bumped on every CREATE, DROP, and — because the counter is threaded into
/// each [`Table`] it creates — every INSERT. The epoch is the invalidation
/// primitive of the engine's plan cache: a cached plan stamped with epoch
/// `v` is replayed only while `version() == v`, so a plan can never outlive
/// a drop (or miss data changes) of any table it references.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    epoch: Arc<AtomicU64>,
    /// Persistent environment shared by every table; `None` for the
    /// (default) in-memory catalog.
    env: Option<Arc<StorageEnv>>,
    /// Engine-wide multi-statement transaction state, shared with every
    /// table this catalog creates.
    txn: Arc<TxnState>,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::with_env(None)
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// A catalog whose DDL/DML is write-ahead logged through `env`.
    pub(crate) fn with_env(env: Option<Arc<StorageEnv>>) -> Catalog {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            epoch: Arc::new(AtomicU64::new(0)),
            env,
            txn: Arc::default(),
        }
    }

    pub(crate) fn env(&self) -> Option<&Arc<StorageEnv>> {
        self.env.as_ref()
    }

    pub(crate) fn txn_state(&self) -> &Arc<TxnState> {
        &self.txn
    }

    /// Whether a multi-statement transaction is currently open.
    pub fn transaction_open(&self) -> bool {
        self.txn.is_open()
    }

    /// The shared epoch counter (recovery threads it into rebuilt
    /// tables).
    pub(crate) fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Insert a table rebuilt from the checkpoint directory (recovery
    /// only: no WAL record, but the epoch still moves).
    pub(crate) fn install_restored(&self, table: Arc<Table>) {
        let mut tables = self.tables.write();
        tables.insert(table.name().to_string(), table);
        self.epoch.fetch_add(1, Ordering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
    }

    /// The catalog epoch: monotonic, bumped on CREATE / DROP / INSERT.
    pub fn version(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Create a table; errors if the name is taken.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        config: &EngineConfig,
    ) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(EngineError::Catalog(format!("table {key:?} already exists")));
        }
        // Log before inserting (WAL order == catalog order; the tables
        // write lock serializes DDL), and skip logging during replay.
        let undo = || UndoRecord::Create { name: key.clone() };
        match &self.env {
            Some(env) if !env.is_replaying() => {
                let _dml = env.dml_lock.read();
                env.log_statement(
                    &self.txn,
                    persist::REC_CREATE,
                    &persist::encode_create(
                        &key,
                        &schema,
                        config.partitions.max(1),
                        config.vector_size.max(1),
                    ),
                    undo,
                )?;
            }
            Some(_) => {}
            None => {
                self.txn.record(undo);
            }
        }
        let table = Arc::new(Table::with_storage(
            &key,
            schema,
            config,
            Arc::clone(&self.epoch),
            self.env.clone(),
            Arc::clone(&self.txn),
        ));
        tables.insert(key, Arc::clone(&table));
        self.epoch.fetch_add(1, Ordering::Release);
        obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
        Ok(table)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| EngineError::Catalog(format!("unknown table {key:?}")))
    }

    /// Drop a table; errors if missing unless `if_exists`. Outside a
    /// transaction the table's pages return to the free list at once;
    /// inside one they stay reserved (the undo log retains the table for
    /// `ROLLBACK`) and are freed at `COMMIT`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let removed = {
            let mut tables = self.tables.write();
            if let Some(table) = tables.get(&key).cloned() {
                let pages = table.all_pages();
                let undo = || UndoRecord::Drop { table, pages: pages.clone() };
                match &self.env {
                    Some(env) if !env.is_replaying() => {
                        let _dml = env.dml_lock.read();
                        let in_txn = env.log_statement(
                            &self.txn,
                            persist::REC_DROP,
                            &persist::encode_drop(&key),
                            undo,
                        )?;
                        if !in_txn {
                            env.free_pages(pages);
                        }
                    }
                    Some(env) => {
                        // Replay of a committed DROP frees immediately,
                        // mirroring the original autocommit execution.
                        env.free_pages(pages);
                    }
                    None => {
                        self.txn.record(undo);
                    }
                }
            }
            let removed = tables.remove(&key).is_some();
            if removed {
                self.epoch.fetch_add(1, Ordering::Release);
                obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
            }
            removed
        };
        if !removed && !if_exists {
            return Err(EngineError::Catalog(format!("unknown table {key:?}")));
        }
        Ok(())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Open a multi-statement transaction. Statements executed while it
    /// is open append WAL records without commit markers (a crash
    /// recovers to the last `COMMIT`) and record logical undo. Nested
    /// `BEGIN` errors. The transaction is engine-global: statements from
    /// any thread join it.
    pub fn begin_transaction(&self) -> Result<()> {
        // Exclusive DML lock: statements hold it shared across their
        // whole log+apply, so BEGIN cannot interleave with an in-flight
        // autocommit statement — whose commit marker would otherwise
        // land inside the open group (sealing its unsealed records) or
        // after the recorded WAL offset (so ROLLBACK's truncation would
        // erase a committed record). Also excludes checkpoint/vacuum.
        let _dml = self.env.as_ref().map(|e| e.dml_lock.write());
        let mut guard = self.txn.inner.lock();
        if guard.is_some() {
            return Err(EngineError::Execution("a transaction is already open".into()));
        }
        let wal_offset = self.env.as_ref().map_or(0, |e| e.wal_size());
        *guard = Some(OpenTxn { wal_offset, undo: Vec::new() });
        obs::metrics::STORAGE_TXN_BEGINS.add(1);
        Ok(())
    }

    /// Commit the open transaction: one commit marker seals the whole
    /// record group (group-fsynced), and pages of tables dropped inside
    /// the transaction go to the free list.
    pub fn commit_transaction(&self) -> Result<()> {
        // Exclusive: no statement is mid-flight while the group seals.
        let _dml = self.env.as_ref().map(|e| e.dml_lock.write());
        let mut guard = self.txn.inner.lock();
        if guard.is_none() {
            return Err(EngineError::Execution("COMMIT without an open transaction".into()));
        }
        // Seal before discarding the undo state: a seal failure leaves
        // the transaction open (COMMIT can be retried, ROLLBACK still
        // has its undo log) instead of an unsealed group that a later
        // autocommit statement's marker would silently commit.
        if let Some(env) = &self.env {
            env.seal_group()?;
        }
        let open = guard.take().expect("checked above");
        drop(guard);
        if let Some(env) = &self.env {
            let mut freed = Vec::new();
            for rec in &open.undo {
                if let UndoRecord::Drop { pages, .. } = rec {
                    freed.extend_from_slice(pages);
                }
            }
            if !freed.is_empty() {
                env.free_pages(freed);
            }
        }
        obs::metrics::STORAGE_TXN_COMMITS.add(1);
        Ok(())
    }

    /// Roll the open transaction back: truncate the WAL to the `BEGIN`
    /// offset, then apply the undo log in reverse (truncate appends,
    /// remove created tables, reinstall dropped ones, retract unique
    /// declarations) so recovery and live state agree.
    pub fn rollback_transaction(&self) -> Result<()> {
        // Exclusive: undo must not race in-flight statements.
        let _dml = self.env.as_ref().map(|e| e.dml_lock.write());
        let mut guard = self.txn.inner.lock();
        let wal_offset = match guard.as_ref() {
            Some(open) => open.wal_offset,
            None => {
                return Err(EngineError::Execution("ROLLBACK without an open transaction".into()))
            }
        };
        // Erase the group from the WAL before touching in-memory state:
        // if the truncate fails the transaction stays open and ROLLBACK
        // can be retried — otherwise the group's unsealed records would
        // linger and the next autocommit statement's commit marker would
        // seal them, making recovery replay rolled-back statements.
        if let Some(env) = &self.env {
            env.truncate_wal_to(wal_offset)?;
        }
        let open = guard.take().expect("checked above");
        drop(guard);
        for rec in open.undo.into_iter().rev() {
            obs::metrics::STORAGE_TXN_UNDO_RECORDS.add(1);
            match rec {
                UndoRecord::Create { name } => {
                    let removed = {
                        let mut tables = self.tables.write();
                        tables.remove(&name)
                    };
                    if let (Some(table), Some(env)) = (removed, &self.env) {
                        env.free_pages(table.all_pages());
                    }
                    self.epoch.fetch_add(1, Ordering::Release);
                    obs::metrics::EXEC_CATALOG_EPOCH_BUMPS.add(1);
                }
                UndoRecord::Drop { table, .. } => {
                    // The deferred page list is discarded: the table
                    // lives again, its pages stay reserved.
                    self.install_restored(table);
                }
                UndoRecord::Append { name, parts, next_partition } => {
                    if let Some(table) = self.tables.read().get(&name).cloned() {
                        let freed = table.truncate_to_prestate(&parts, next_partition);
                        if let Some(env) = &self.env {
                            env.free_pages(freed);
                        }
                    }
                }
                UndoRecord::Unique { name, column } => {
                    if let Some(table) = self.tables.read().get(&name).cloned() {
                        table.undeclare_unique(&column);
                    }
                }
            }
        }
        obs::metrics::STORAGE_TXN_ROLLBACKS.add(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnVector;
    use crate::storage::ColumnDef;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("x", DataType::Int)]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let cat = Catalog::new();
        let cfg = EngineConfig::test_small();
        cat.create_table("Facts", schema(), &cfg).unwrap();
        assert!(cat.table("FACTS").is_ok());
        assert!(cat.create_table("facts", schema(), &cfg).is_err());
        assert_eq!(cat.table_names(), vec!["facts"]);
        cat.drop_table("facts", false).unwrap();
        assert!(cat.table("facts").is_err());
        assert!(cat.drop_table("facts", false).is_err());
        cat.drop_table("facts", true).unwrap();
    }

    #[test]
    fn version_bumps_on_create_drop_insert() {
        let cat = Catalog::new();
        let cfg = EngineConfig::test_small();
        assert_eq!(cat.version(), 0);
        let t = cat.create_table("t", schema(), &cfg).unwrap();
        assert_eq!(cat.version(), 1);
        t.append(vec![ColumnVector::Int(vec![1, 2])]).unwrap();
        assert_eq!(cat.version(), 2, "DML through a catalog table bumps the epoch");
        cat.drop_table("t", false).unwrap();
        assert_eq!(cat.version(), 3);
        // Failed operations leave the epoch untouched.
        assert!(cat.drop_table("t", false).is_err());
        cat.drop_table("t", true).unwrap(); // if_exists no-op
        assert_eq!(cat.version(), 3);
    }
}
