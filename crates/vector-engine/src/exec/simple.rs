//! Single-input operators: filter, project, sort, limit, values.

use crate::column::{Batch, ColumnVector};
use crate::error::{EngineError, Result};
use crate::exec::physical::Operator;
use crate::expr::Expr;
use crate::types::{DataType, Value};
use std::cmp::Ordering;

/// Applies a boolean predicate and compacts the batch.
pub struct FilterExec {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl FilterExec {
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> FilterExec {
        FilterExec { input, predicate }
    }
}

impl Operator for FilterExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        while let Some(batch) = self.input.next()? {
            let mask_col = self.predicate.eval(&batch)?;
            let mask = mask_col.as_bool()?;
            let kept = mask.iter().filter(|&&m| m).count();
            if kept == 0 {
                continue;
            }
            if kept == batch.num_rows() {
                return Ok(Some(batch));
            }
            return Ok(Some(batch.filter(mask)));
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.input.close()
    }
}

/// Evaluates projection expressions per batch.
pub struct ProjectExec {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
}

impl ProjectExec {
    pub fn new(input: Box<dyn Operator>, exprs: Vec<Expr>) -> ProjectExec {
        ProjectExec { input, exprs }
    }
}

impl Operator for ProjectExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        match self.input.next()? {
            None => Ok(None),
            Some(batch) => {
                let cols: Result<Vec<ColumnVector>> =
                    self.exprs.iter().map(|e| e.eval(&batch)).collect();
                Ok(Some(Batch::new(cols?)))
            }
        }
    }

    fn close(&mut self) {
        self.input.close()
    }
}

/// Stops after emitting `n` rows.
pub struct LimitExec {
    input: Box<dyn Operator>,
    remaining: u64,
}

impl LimitExec {
    pub fn new(input: Box<dyn Operator>, n: u64) -> LimitExec {
        LimitExec { input, remaining: n }
    }
}

impl Operator for LimitExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            None => Ok(None),
            Some(batch) => {
                let take = (self.remaining as usize).min(batch.num_rows());
                self.remaining -= take as u64;
                if take == batch.num_rows() {
                    Ok(Some(batch))
                } else {
                    Ok(Some(batch.slice(0, take)))
                }
            }
        }
    }

    fn close(&mut self) {
        self.input.close()
    }
}

/// Full sort: materializes the input, sorts row indices by the key
/// expressions, emits `vector_size` slices.
pub struct SortExec {
    input: Box<dyn Operator>,
    keys: Vec<(Expr, bool)>,
    vector_size: usize,
    sorted: Option<Batch>,
    offset: usize,
}

impl SortExec {
    pub fn new(input: Box<dyn Operator>, keys: Vec<(Expr, bool)>, vector_size: usize) -> SortExec {
        SortExec { input, keys, vector_size, sorted: None, offset: 0 }
    }

    fn materialize(&mut self) -> Result<()> {
        let mut batches = Vec::new();
        while let Some(b) = self.input.next()? {
            batches.push(b);
        }
        let all = concat_batches(&batches);
        let rows = all.num_rows();
        if rows == 0 {
            self.sorted = Some(all);
            return Ok(());
        }
        let mut key_cols = Vec::with_capacity(self.keys.len());
        for (expr, asc) in &self.keys {
            key_cols.push((expr.eval(&all)?, *asc));
        }
        let mut indices: Vec<usize> = (0..rows).collect();
        indices.sort_by(|&a, &b| {
            for (col, asc) in &key_cols {
                let ord = col.value(a).total_cmp(&col.value(b));
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        self.sorted = Some(all.take(&indices));
        Ok(())
    }
}

impl Operator for SortExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.sorted.is_none() {
            self.materialize()?;
        }
        let sorted = self.sorted.as_ref().expect("materialized");
        if self.offset >= sorted.num_rows() {
            return Ok(None);
        }
        let end = (self.offset + self.vector_size).min(sorted.num_rows());
        let out = sorted.slice(self.offset, end);
        self.offset = end;
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.sorted = None;
        self.input.close()
    }
}

/// Emits literal rows (SELECT without FROM, tests).
pub struct ValuesExec {
    rows: Vec<Vec<Value>>,
    types: Vec<DataType>,
    done: bool,
}

impl ValuesExec {
    pub fn new(rows: Vec<Vec<Value>>, types: Vec<DataType>) -> ValuesExec {
        ValuesExec { rows, types, done: false }
    }
}

impl Operator for ValuesExec {
    fn next(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        if self.types.is_empty() {
            // Zero-column relation: row count still matters.
            return Ok(Some(Batch::of_rows(self.rows.len())));
        }
        let mut cols: Vec<ColumnVector> =
            self.types.iter().map(|t| ColumnVector::empty(*t)).collect();
        for row in &self.rows {
            if row.len() != cols.len() {
                return Err(EngineError::Execution("ragged VALUES row".into()));
            }
            for (col, v) in cols.iter_mut().zip(row) {
                col.push(v.clone())?;
            }
        }
        Ok(Some(Batch::new(cols)))
    }
}

/// Replays pre-computed batches (the parallel driver's gather point).
pub struct BatchesExec {
    batches: std::vec::IntoIter<Batch>,
}

impl BatchesExec {
    pub fn new(batches: Vec<Batch>) -> BatchesExec {
        BatchesExec { batches: batches.into_iter() }
    }
}

impl Operator for BatchesExec {
    fn next(&mut self) -> Result<Option<Batch>> {
        Ok(self.batches.next())
    }
}

/// Concatenate batches into one (empty input gives a zero-row, zero-column
/// batch). Output capacity is reserved up front, so each column is filled
/// by one append pass without intermediate reallocation.
pub fn concat_batches(batches: &[Batch]) -> Batch {
    let Some(first) = batches.first() else {
        return Batch::of_rows(0);
    };
    if batches.len() == 1 {
        return first.clone();
    }
    if first.num_columns() == 0 {
        let rows = batches.iter().map(Batch::num_rows).sum();
        return Batch::of_rows(rows);
    }
    let total: usize = batches.iter().map(Batch::num_rows).sum();
    let mut cols: Vec<ColumnVector> =
        first.columns().iter().map(|c| ColumnVector::with_capacity(c.data_type(), total)).collect();
    for b in batches {
        for (c, src) in cols.iter_mut().zip(b.columns()) {
            c.append(src);
        }
    }
    Batch::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::physical::drain;
    use crate::expr::BinaryOp;

    fn source(nums: Vec<i64>) -> Box<dyn Operator> {
        let rows: Vec<Vec<Value>> = nums.into_iter().map(|n| vec![Value::Int(n)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int]))
    }

    #[test]
    fn filter_compacts_and_skips_empty() {
        let f = FilterExec::new(
            source(vec![1, 2, 3, 4, 5]),
            Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::lit(Value::Int(3))),
        );
        let out = drain(Box::new(f)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].column(0), &ColumnVector::Int(vec![4, 5]));
    }

    #[test]
    fn filter_yielding_nothing() {
        let f = FilterExec::new(
            source(vec![1, 2]),
            Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::lit(Value::Int(10))),
        );
        assert!(drain(Box::new(f)).unwrap().is_empty());
    }

    #[test]
    fn project_computes_expressions() {
        let p = ProjectExec::new(
            source(vec![1, 2, 3]),
            vec![Expr::binary(BinaryOp::Mul, Expr::col(0), Expr::lit(Value::Int(10)))],
        );
        let out = drain(Box::new(p)).unwrap();
        assert_eq!(out[0].column(0), &ColumnVector::Int(vec![10, 20, 30]));
    }

    #[test]
    fn limit_truncates_mid_batch() {
        let l = LimitExec::new(source(vec![1, 2, 3, 4, 5]), 3);
        let out = drain(Box::new(l)).unwrap();
        let total: usize = out.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn sort_orders_and_slices() {
        let s = SortExec::new(source(vec![3, 1, 2, 5, 4]), vec![(Expr::col(0), true)], 2);
        let out = drain(Box::new(s)).unwrap();
        assert_eq!(out.len(), 3); // 2 + 2 + 1
        let all: Vec<i64> =
            out.iter().flat_map(|b| b.column(0).as_int().unwrap().to_vec()).collect();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn sort_descending_with_ties_is_stable_per_keys() {
        let s = SortExec::new(source(vec![1, 3, 2]), vec![(Expr::col(0), false)], 10);
        let out = drain(Box::new(s)).unwrap();
        assert_eq!(out[0].column(0), &ColumnVector::Int(vec![3, 2, 1]));
    }

    #[test]
    fn concat_handles_empty_and_mixed() {
        assert_eq!(concat_batches(&[]).num_rows(), 0);
        let a = Batch::new(vec![ColumnVector::Int(vec![1])]);
        let b = Batch::new(vec![ColumnVector::Int(vec![2, 3])]);
        let c = concat_batches(&[a, b]);
        assert_eq!(c.column(0), &ColumnVector::Int(vec![1, 2, 3]));
    }

    #[test]
    fn values_zero_columns_keeps_row_count() {
        let v = ValuesExec::new(vec![vec![]], vec![]);
        let out = drain(Box::new(v)).unwrap();
        assert_eq!(out[0].num_rows(), 1);
        assert_eq!(out[0].num_columns(), 0);
    }
}
