//! Join operators: nested-loop cross join and hash equi-join.

use crate::column::{Batch, ColumnVector};
use crate::error::Result;
use crate::exec::physical::Operator;
use crate::exec::simple::concat_batches;
use crate::expr::Expr;
use crate::types::Value;
use std::collections::HashMap;

/// A hashable, type-normalized join/group key component. Numeric values
/// that represent the same number (e.g. `INT 3` and `FLOAT 3.0`) map to the
/// same key, matching SQL equality.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum KeyPart {
    Int(i64),
    /// Non-integral float, by bit pattern (`-0.0` normalized to `0.0`).
    FloatBits(u64),
    Bool(bool),
    Str(String),
}

/// Normalize a value into a [`KeyPart`].
pub fn key_part(v: &Value) -> KeyPart {
    match v {
        Value::Int(i) => KeyPart::Int(*i),
        Value::Float(f) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                KeyPart::Int(*f as i64)
            } else {
                KeyPart::FloatBits(f.to_bits())
            }
        }
        Value::Bool(b) => KeyPart::Bool(*b),
        Value::Str(s) => KeyPart::Str(s.clone()),
    }
}

/// Extract the composite key of row `row` from evaluated key columns.
pub fn row_key(cols: &[ColumnVector], row: usize) -> Vec<KeyPart> {
    cols.iter().map(|c| key_part(&c.value(row))).collect()
}

fn glue(left: Batch, right: Batch) -> Batch {
    let mut cols = left.into_columns();
    cols.extend(right.into_columns());
    Batch::new(cols)
}

/// Cartesian product. The right side is materialized (the build side);
/// the left side streams. Used when no equality conjunct is available —
/// notably the ML-To-SQL input function, which cross-joins the fact table
/// with the model's input-layer edges (Sec. 4.3.1).
pub struct CrossJoinExec {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    vector_size: usize,
    right_batch: Option<std::sync::Arc<Batch>>,
    current_left: Option<Batch>,
    left_row: usize,
    right_pos: usize,
}

impl CrossJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        vector_size: usize,
    ) -> CrossJoinExec {
        CrossJoinExec {
            left,
            right,
            vector_size: vector_size.max(1),
            right_batch: None,
            current_left: None,
            left_row: 0,
            right_pos: 0,
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut batches = Vec::new();
        while let Some(b) = self.right.next()? {
            batches.push(b);
        }
        self.right_batch = Some(std::sync::Arc::new(concat_batches(&batches)));
        Ok(())
    }
}

impl Operator for CrossJoinExec {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.right_batch.is_none() {
            self.build()?;
        }
        let right = std::sync::Arc::clone(self.right_batch.as_ref().expect("built"));
        let r_rows = right.num_rows();
        if r_rows == 0 {
            return Ok(None);
        }
        loop {
            if self.current_left.is_none() {
                match self.left.next()? {
                    None => return Ok(None),
                    Some(b) => {
                        if b.num_rows() == 0 {
                            continue;
                        }
                        self.current_left = Some(b);
                        self.left_row = 0;
                        self.right_pos = 0;
                    }
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            let l_rows = left.num_rows();
            let mut li = Vec::with_capacity(self.vector_size);
            let mut ri = Vec::with_capacity(self.vector_size);
            while li.len() < self.vector_size && self.left_row < l_rows {
                let take = (self.vector_size - li.len()).min(r_rows - self.right_pos);
                for k in 0..take {
                    li.push(self.left_row);
                    ri.push(self.right_pos + k);
                }
                self.right_pos += take;
                if self.right_pos == r_rows {
                    self.right_pos = 0;
                    self.left_row += 1;
                }
            }
            if li.is_empty() {
                self.current_left = None;
                continue;
            }
            let out = glue(left.take(&li), right.take(&ri));
            if self.left_row >= l_rows {
                self.current_left = None;
            }
            return Ok(Some(out));
        }
    }

    fn close(&mut self) {
        self.right_batch = None;
        self.current_left = None;
        self.left.close();
        self.right.close();
    }
}

/// Inner hash equi-join following the classic two-phase pattern the paper's
/// ModelJoin mirrors (Sec. 5.1): the right side is consumed into a hash
/// table (build), the left side streams (probe). Key expressions may be
/// computed (`node - offset`).
pub struct HashJoinExec {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    vector_size: usize,
    built: Option<BuildSide>,
    /// Carry-over matches of the current probe batch.
    pending: Option<Pending>,
}

struct BuildSide {
    batch: Batch,
    table: HashMap<Vec<KeyPart>, Vec<usize>>,
}

struct Pending {
    left_batch: Batch,
    pairs: Vec<(usize, usize)>,
    offset: usize,
}

impl HashJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        vector_size: usize,
    ) -> HashJoinExec {
        assert_eq!(left_keys.len(), right_keys.len(), "key arity mismatch");
        HashJoinExec {
            left,
            right,
            left_keys,
            right_keys,
            vector_size: vector_size.max(1),
            built: None,
            pending: None,
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut batches = Vec::new();
        while let Some(b) = self.right.next()? {
            batches.push(b);
        }
        let batch = concat_batches(&batches);
        let mut table: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
        if batch.num_rows() > 0 {
            let key_cols: Result<Vec<ColumnVector>> =
                self.right_keys.iter().map(|e| e.eval(&batch)).collect();
            let key_cols = key_cols?;
            for row in 0..batch.num_rows() {
                table.entry(row_key(&key_cols, row)).or_default().push(row);
            }
        }
        self.built = Some(BuildSide { batch, table });
        Ok(())
    }

    fn emit(&mut self) -> Option<Batch> {
        let build = self.built.as_ref().expect("built");
        let pending = self.pending.as_mut()?;
        if pending.offset >= pending.pairs.len() {
            self.pending = None;
            return None;
        }
        let end = (pending.offset + self.vector_size).min(pending.pairs.len());
        let chunk = &pending.pairs[pending.offset..end];
        let li: Vec<usize> = chunk.iter().map(|p| p.0).collect();
        let ri: Vec<usize> = chunk.iter().map(|p| p.1).collect();
        let out = glue(pending.left_batch.take(&li), build.batch.take(&ri));
        pending.offset = end;
        if pending.offset >= pending.pairs.len() {
            self.pending = None;
        }
        Some(out)
    }
}

impl Operator for HashJoinExec {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.built.is_none() {
            self.build()?;
        }
        loop {
            if let Some(batch) = self.emit() {
                return Ok(Some(batch));
            }
            let build_empty = self.built.as_ref().expect("built").table.is_empty();
            let Some(left_batch) = self.left.next()? else {
                return Ok(None);
            };
            if build_empty || left_batch.num_rows() == 0 {
                continue;
            }
            let key_cols: Result<Vec<ColumnVector>> =
                self.left_keys.iter().map(|e| e.eval(&left_batch)).collect();
            let key_cols = key_cols?;
            let build = self.built.as_ref().expect("built");
            let mut pairs = Vec::new();
            for row in 0..left_batch.num_rows() {
                if let Some(matches) = build.table.get(&row_key(&key_cols, row)) {
                    for &r in matches {
                        pairs.push((row, r));
                    }
                }
            }
            if pairs.is_empty() {
                continue;
            }
            self.pending = Some(Pending { left_batch, pairs, offset: 0 });
        }
    }

    fn close(&mut self) {
        self.built = None;
        self.pending = None;
        self.left.close();
        self.right.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::physical::drain;
    use crate::exec::simple::ValuesExec;
    use crate::expr::BinaryOp;
    use crate::types::DataType;

    fn ints(name_rows: Vec<i64>) -> Box<dyn Operator> {
        let rows = name_rows.into_iter().map(|n| vec![Value::Int(n)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int]))
    }

    fn pairs(rows: Vec<(i64, f64)>) -> Box<dyn Operator> {
        let rows = rows.into_iter().map(|(a, b)| vec![Value::Int(a), Value::Float(b)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int, DataType::Float]))
    }

    fn collect_rows(batches: Vec<Batch>) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                out.push(b.row(r));
            }
        }
        out
    }

    #[test]
    fn cross_join_produces_full_product() {
        let j = CrossJoinExec::new(ints(vec![1, 2, 3]), ints(vec![10, 20]), 4);
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Int(20)]);
        assert_eq!(rows[5], vec![Value::Int(3), Value::Int(20)]);
    }

    #[test]
    fn cross_join_respects_vector_size() {
        let j = CrossJoinExec::new(ints((0..10).collect()), ints(vec![1, 2, 3]), 4);
        let batches = drain(Box::new(j)).unwrap();
        assert!(batches.iter().all(|b| b.num_rows() <= 4));
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn cross_join_with_empty_side() {
        let j = CrossJoinExec::new(ints(vec![1, 2]), ints(vec![]), 4);
        assert!(drain(Box::new(j)).unwrap().is_empty());
        let j = CrossJoinExec::new(ints(vec![]), ints(vec![1, 2]), 4);
        assert!(drain(Box::new(j)).unwrap().is_empty());
    }

    #[test]
    fn hash_join_matches_duplicates_on_build_side() {
        // left ids 1..4, right has two rows with id 2.
        let left = ints(vec![1, 2, 3, 4]);
        let right = pairs(vec![(2, 0.1), (2, 0.2), (4, 0.4), (9, 0.9)]);
        let j = HashJoinExec::new(left, right, vec![Expr::col(0)], vec![Expr::col(0)], 1024);
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r[0] == r[1]));
    }

    #[test]
    fn hash_join_with_computed_key() {
        // right key = node - 10
        let left = ints(vec![0, 1, 2]);
        let right = ints(vec![10, 11, 15]);
        let j = HashJoinExec::new(
            left,
            right,
            vec![Expr::col(0)],
            vec![Expr::binary(BinaryOp::Sub, Expr::col(0), Expr::lit(Value::Int(10)))],
            1024,
        );
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 2); // 0<->10, 1<->11
    }

    #[test]
    fn hash_join_mixed_numeric_key_types() {
        let left = ints(vec![1, 2, 3]);
        let right = Box::new(ValuesExec::new(
            vec![vec![Value::Float(2.0)], vec![Value::Float(2.5)]],
            vec![DataType::Float],
        ));
        let j = HashJoinExec::new(left, right, vec![Expr::col(0)], vec![Expr::col(0)], 1024);
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(2));
    }

    #[test]
    fn hash_join_empty_build_is_empty() {
        let j = HashJoinExec::new(
            ints(vec![1, 2]),
            ints(vec![]),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
            1024,
        );
        assert!(drain(Box::new(j)).unwrap().is_empty());
    }

    #[test]
    fn key_part_normalization() {
        assert_eq!(key_part(&Value::Int(3)), key_part(&Value::Float(3.0)));
        assert_ne!(key_part(&Value::Float(3.5)), key_part(&Value::Int(3)));
        assert_eq!(key_part(&Value::Float(0.0)), key_part(&Value::Float(-0.0)));
        assert_eq!(key_part(&Value::Str("a".into())), KeyPart::Str("a".into()));
    }

    #[test]
    fn multi_column_keys() {
        let left = pairs(vec![(1, 1.0), (1, 2.0)]);
        let right = pairs(vec![(1, 2.0), (1, 3.0)]);
        let j = HashJoinExec::new(
            left,
            right,
            vec![Expr::col(0), Expr::col(1)],
            vec![Expr::col(0), Expr::col(1)],
            1024,
        );
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Float(2.0));
    }
}
