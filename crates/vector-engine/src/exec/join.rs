//! Join operators: nested-loop cross join and vectorized hash equi-join.

use crate::column::{Batch, ColumnVector};
use crate::error::Result;
use crate::exec::hash::{hash_key_columns, keys_equal, KeyTable};
use crate::exec::physical::Operator;
use crate::exec::simple::concat_batches;
use crate::expr::Expr;

fn glue(left: Batch, right: Batch) -> Batch {
    let mut cols = left.into_columns();
    cols.extend(right.into_columns());
    Batch::new(cols)
}

/// Cartesian product. The right side is materialized (the build side);
/// the left side streams. Used when no equality conjunct is available —
/// notably the ML-To-SQL input function, which cross-joins the fact table
/// with the model's input-layer edges (Sec. 4.3.1).
pub struct CrossJoinExec {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    vector_size: usize,
    right_batch: Option<std::sync::Arc<Batch>>,
    current_left: Option<Batch>,
    left_row: usize,
    right_pos: usize,
}

impl CrossJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        vector_size: usize,
    ) -> CrossJoinExec {
        CrossJoinExec {
            left,
            right,
            vector_size: vector_size.max(1),
            right_batch: None,
            current_left: None,
            left_row: 0,
            right_pos: 0,
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut batches = Vec::new();
        while let Some(b) = self.right.next()? {
            batches.push(b);
        }
        self.right_batch = Some(std::sync::Arc::new(concat_batches(&batches)));
        Ok(())
    }
}

impl Operator for CrossJoinExec {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.right_batch.is_none() {
            self.build()?;
        }
        let right = std::sync::Arc::clone(self.right_batch.as_ref().expect("built"));
        let r_rows = right.num_rows();
        if r_rows == 0 {
            return Ok(None);
        }
        loop {
            if self.current_left.is_none() {
                match self.left.next()? {
                    None => return Ok(None),
                    Some(b) => {
                        if b.num_rows() == 0 {
                            continue;
                        }
                        self.current_left = Some(b);
                        self.left_row = 0;
                        self.right_pos = 0;
                    }
                }
            }
            let left = self.current_left.as_ref().expect("set above");
            let l_rows = left.num_rows();
            let mut li = Vec::with_capacity(self.vector_size);
            let mut ri = Vec::with_capacity(self.vector_size);
            while li.len() < self.vector_size && self.left_row < l_rows {
                let take = (self.vector_size - li.len()).min(r_rows - self.right_pos);
                for k in 0..take {
                    li.push(self.left_row);
                    ri.push(self.right_pos + k);
                }
                self.right_pos += take;
                if self.right_pos == r_rows {
                    self.right_pos = 0;
                    self.left_row += 1;
                }
            }
            if li.is_empty() {
                self.current_left = None;
                continue;
            }
            let out = glue(left.take(&li), right.take(&ri));
            if self.left_row >= l_rows {
                self.current_left = None;
            }
            return Ok(Some(out));
        }
    }

    fn close(&mut self) {
        self.right_batch = None;
        self.current_left = None;
        self.left.close();
        self.right.close();
    }
}

/// Inner hash equi-join following the classic two-phase pattern the paper's
/// ModelJoin mirrors (Sec. 5.1): the right side is consumed into a hash
/// table (build), the left side streams (probe). Key expressions may be
/// computed (`node - offset`).
///
/// Batch-at-a-time and allocation-free on the per-row path: the build side
/// retains its evaluated key columns and indexes the *distinct* keys
/// through a [`KeyTable`]; duplicate build rows chain through a `next_row`
/// array in ascending row order. Each probe batch computes one reusable
/// hash vector ([`hash_key_columns`]), resolves its key by typed column
/// comparison ([`keys_equal`]) once per probe row, and then walks the
/// matching key's row list directly — no composite key, no `Value`, no
/// string clone, no per-duplicate hash check. Output is produced by
/// columnar gather (`Batch::take` over selection vectors).
pub struct HashJoinExec {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    vector_size: usize,
    built: Option<BuildSide>,
    /// Carry-over matches of the current probe batch.
    pending: Option<Pending>,
    /// Reused probe-batch hash vector.
    probe_hashes: Vec<u64>,
    /// Recycled selection-vector buffers: once a probe batch's matches are
    /// fully emitted, its `li`/`ri` allocations come back here, so steady
    /// state reallocates nothing even at high match fan-out.
    li_buf: Vec<usize>,
    ri_buf: Vec<usize>,
}

struct BuildSide {
    batch: Batch,
    /// Evaluated key columns, retained for collision resolution.
    key_cols: Vec<ColumnVector>,
    /// One entry per distinct key.
    table: KeyTable,
    /// Per table entry: first build row carrying that key (also the
    /// representative row compared by `keys_equal`).
    first_row: Vec<u32>,
    /// CSR duplicate lists: entry `e` owns build rows
    /// `rows_list[offsets[e]..offsets[e + 1]]`, ascending. A contiguous
    /// slice per key keeps the emit loop free of pointer chasing even at
    /// high match fan-out.
    offsets: Vec<u32>,
    rows_list: Vec<u32>,
}

struct Pending {
    left_batch: Batch,
    /// Matched (probe, build) row indices as two parallel selection vectors.
    li: Vec<usize>,
    ri: Vec<usize>,
    offset: usize,
}

impl HashJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        vector_size: usize,
    ) -> HashJoinExec {
        assert_eq!(left_keys.len(), right_keys.len(), "key arity mismatch");
        HashJoinExec {
            left,
            right,
            left_keys,
            right_keys,
            vector_size: vector_size.max(1),
            built: None,
            pending: None,
            probe_hashes: Vec::new(),
            li_buf: Vec::new(),
            ri_buf: Vec::new(),
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut batches = Vec::new();
        while let Some(b) = self.right.next()? {
            batches.push(b);
        }
        let batch = concat_batches(&batches);
        let rows = batch.num_rows();
        let mut key_cols = Vec::new();
        let mut table = KeyTable::with_capacity(rows);
        let mut first_row: Vec<u32> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut entry_of: Vec<u32> = vec![0; rows];
        if rows > 0 {
            let cols: Result<Vec<ColumnVector>> =
                self.right_keys.iter().map(|e| e.eval(&batch)).collect();
            key_cols = cols?;
            let mut hashes = Vec::new();
            hash_key_columns(&key_cols, rows, &mut hashes);
            for (row, &h) in hashes.iter().enumerate() {
                let entry = table
                    .candidates(h)
                    .find(|&c| keys_equal(&key_cols, first_row[c] as usize, &key_cols, row));
                let e = match entry {
                    Some(e) => e,
                    None => {
                        table.insert(h);
                        first_row.push(row as u32);
                        counts.push(0);
                        first_row.len() - 1
                    }
                };
                counts[e] += 1;
                entry_of[row] = e as u32;
            }
        }
        // Counts → CSR: prefix sums, then scatter rows (ascending scan keeps
        // each per-key list in build-row order).
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..counts.len()].to_vec();
        let mut rows_list = vec![0u32; rows];
        for (row, &e) in entry_of.iter().enumerate() {
            rows_list[cursor[e as usize] as usize] = row as u32;
            cursor[e as usize] += 1;
        }
        self.built = Some(BuildSide { batch, key_cols, table, first_row, offsets, rows_list });
        Ok(())
    }

    fn emit(&mut self) -> Option<Batch> {
        let build = self.built.as_ref().expect("built");
        let pending = self.pending.as_mut()?;
        if pending.offset >= pending.li.len() {
            self.recycle();
            return None;
        }
        let end = (pending.offset + self.vector_size).min(pending.li.len());
        let li = &pending.li[pending.offset..end];
        let ri = &pending.ri[pending.offset..end];
        // Build rows matching one probe key are usually consecutive (tables
        // laid out grouped by key), so the build-side gather is run-copied.
        let out = glue(pending.left_batch.take(li), build.batch.take_runs(ri));
        pending.offset = end;
        if pending.offset >= pending.li.len() {
            self.recycle();
        }
        Some(out)
    }

    /// Reclaim a finished probe batch's selection-vector allocations.
    fn recycle(&mut self) {
        if let Some(p) = self.pending.take() {
            self.li_buf = p.li;
            self.ri_buf = p.ri;
        }
    }
}

impl Operator for HashJoinExec {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.built.is_none() {
            self.build()?;
        }
        loop {
            if let Some(batch) = self.emit() {
                return Ok(Some(batch));
            }
            let build_empty = self.built.as_ref().expect("built").table.is_empty();
            let Some(left_batch) = self.left.next()? else {
                return Ok(None);
            };
            if build_empty || left_batch.num_rows() == 0 {
                continue;
            }
            let key_cols: Result<Vec<ColumnVector>> =
                self.left_keys.iter().map(|e| e.eval(&left_batch)).collect();
            let key_cols = key_cols?;
            let build = self.built.as_ref().expect("built");
            hash_key_columns(&key_cols, left_batch.num_rows(), &mut self.probe_hashes);
            let mut li = std::mem::take(&mut self.li_buf);
            let mut ri = std::mem::take(&mut self.ri_buf);
            li.clear();
            ri.clear();
            for (row, &h) in self.probe_hashes.iter().enumerate() {
                // Entries are distinct keys, so at most one candidate can
                // pass `keys_equal`; its CSR row list is already in
                // ascending build-row order (the seed operator's
                // deterministic order).
                let entry = build.table.candidates(h).find(|&c| {
                    keys_equal(&build.key_cols, build.first_row[c] as usize, &key_cols, row)
                });
                if let Some(e) = entry {
                    let matches =
                        &build.rows_list[build.offsets[e] as usize..build.offsets[e + 1] as usize];
                    li.resize(li.len() + matches.len(), row);
                    ri.extend(matches.iter().map(|&r| r as usize));
                }
            }
            if li.is_empty() {
                continue;
            }
            self.pending = Some(Pending { left_batch, li, ri, offset: 0 });
        }
    }

    fn close(&mut self) {
        self.built = None;
        self.pending = None;
        self.left.close();
        self.right.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::physical::drain;
    use crate::exec::simple::ValuesExec;
    use crate::expr::BinaryOp;
    use crate::types::{DataType, Value};

    fn ints(name_rows: Vec<i64>) -> Box<dyn Operator> {
        let rows = name_rows.into_iter().map(|n| vec![Value::Int(n)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int]))
    }

    fn pairs(rows: Vec<(i64, f64)>) -> Box<dyn Operator> {
        let rows = rows.into_iter().map(|(a, b)| vec![Value::Int(a), Value::Float(b)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int, DataType::Float]))
    }

    fn collect_rows(batches: Vec<Batch>) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                out.push(b.row(r));
            }
        }
        out
    }

    #[test]
    fn cross_join_produces_full_product() {
        let j = CrossJoinExec::new(ints(vec![1, 2, 3]), ints(vec![10, 20]), 4);
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Int(20)]);
        assert_eq!(rows[5], vec![Value::Int(3), Value::Int(20)]);
    }

    #[test]
    fn cross_join_respects_vector_size() {
        let j = CrossJoinExec::new(ints((0..10).collect()), ints(vec![1, 2, 3]), 4);
        let batches = drain(Box::new(j)).unwrap();
        assert!(batches.iter().all(|b| b.num_rows() <= 4));
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn cross_join_with_empty_side() {
        let j = CrossJoinExec::new(ints(vec![1, 2]), ints(vec![]), 4);
        assert!(drain(Box::new(j)).unwrap().is_empty());
        let j = CrossJoinExec::new(ints(vec![]), ints(vec![1, 2]), 4);
        assert!(drain(Box::new(j)).unwrap().is_empty());
    }

    #[test]
    fn hash_join_matches_duplicates_on_build_side() {
        // left ids 1..4, right has two rows with id 2.
        let left = ints(vec![1, 2, 3, 4]);
        let right = pairs(vec![(2, 0.1), (2, 0.2), (4, 0.4), (9, 0.9)]);
        let j = HashJoinExec::new(left, right, vec![Expr::col(0)], vec![Expr::col(0)], 1024);
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r[0] == r[1]));
        // Duplicate build matches come out in build-row order.
        assert_eq!(rows[0][2], Value::Float(0.1));
        assert_eq!(rows[1][2], Value::Float(0.2));
    }

    #[test]
    fn hash_join_with_computed_key() {
        // right key = node - 10
        let left = ints(vec![0, 1, 2]);
        let right = ints(vec![10, 11, 15]);
        let j = HashJoinExec::new(
            left,
            right,
            vec![Expr::col(0)],
            vec![Expr::binary(BinaryOp::Sub, Expr::col(0), Expr::lit(Value::Int(10)))],
            1024,
        );
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 2); // 0<->10, 1<->11
    }

    #[test]
    fn hash_join_mixed_numeric_key_types() {
        let left = ints(vec![1, 2, 3]);
        let right = Box::new(ValuesExec::new(
            vec![vec![Value::Float(2.0)], vec![Value::Float(2.5)]],
            vec![DataType::Float],
        ));
        let j = HashJoinExec::new(left, right, vec![Expr::col(0)], vec![Expr::col(0)], 1024);
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(2));
    }

    #[test]
    fn hash_join_string_keys_without_probe_allocation() {
        let strs = |ss: Vec<&str>| -> Box<dyn Operator> {
            let rows = ss.into_iter().map(|s| vec![Value::Str(s.into())]).collect();
            Box::new(ValuesExec::new(rows, vec![DataType::Str]))
        };
        let j = HashJoinExec::new(
            strs(vec!["a", "b", "c", "b"]),
            strs(vec!["b", "x"]),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
            1024,
        );
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[0] == Value::Str("b".into())));
    }

    #[test]
    fn hash_join_empty_build_is_empty() {
        let j = HashJoinExec::new(
            ints(vec![1, 2]),
            ints(vec![]),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
            1024,
        );
        assert!(drain(Box::new(j)).unwrap().is_empty());
    }

    #[test]
    fn multi_column_keys() {
        let left = pairs(vec![(1, 1.0), (1, 2.0)]);
        let right = pairs(vec![(1, 2.0), (1, 3.0)]);
        let j = HashJoinExec::new(
            left,
            right,
            vec![Expr::col(0), Expr::col(1)],
            vec![Expr::col(0), Expr::col(1)],
            1024,
        );
        let rows = collect_rows(drain(Box::new(j)).unwrap());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Float(2.0));
    }

    #[test]
    fn vector_size_bounds_output_batches() {
        // 4 probe rows each matching 3 build rows → 12 output rows in
        // batches of ≤ 5.
        let left = ints(vec![7, 7, 7, 7]);
        let right = ints(vec![7, 7, 7]);
        let j = HashJoinExec::new(left, right, vec![Expr::col(0)], vec![Expr::col(0)], 5);
        let batches = drain(Box::new(j)).unwrap();
        assert!(batches.iter().all(|b| b.num_rows() <= 5));
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 12);
    }
}
