//! The shared columnar key pipeline behind hash join and hash aggregation.
//!
//! The seed operators materialized a `Vec<KeyPart>` per row — one heap
//! allocation plus a SipHash of an enum tree for every probe. This module
//! replaces that with three batch-level pieces:
//!
//! * [`hash_key_columns`]: a per-batch `Vec<u64>` hash vector. Each key
//!   column contributes a normalized 64-bit code per row (integer-valued
//!   floats collapse onto the integer code, `-0.0` onto `0.0`, strings hash
//!   by bytes) mixed with a splitmix-style finalizer — a tight per-column
//!   loop the compiler can vectorize, with no per-row allocation.
//! * [`keys_equal`]: typed positional comparison directly against the
//!   retained key columns, implementing SQL equality (`INT 3` = `FLOAT
//!   3.0`) without materializing composite keys. Hash codes only *candidate*
//!   matches; equality is always resolved here.
//! * [`KeyTable`]: a bucket-chained raw table over row indices. Buckets are
//!   open-addressed by masked hash; entries chain through a parallel `next`
//!   array and keep their full 64-bit hash so probes reject almost all
//!   collisions before touching the key columns.

use crate::column::ColumnVector;

/// splitmix64 finalizer: full-avalanche mix of one 64-bit code.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Combine a column's code into an existing row hash.
#[inline]
fn combine(h: u64, code: u64) -> u64 {
    // Boost-style hash_combine, widened to 64 bit.
    h ^ mix(code).wrapping_add(0x9e3779b97f4a7c15).wrapping_add(h << 6).wrapping_add(h >> 2)
}

/// Normalized code of a float: integer-valued floats collapse onto the
/// integer's code so `INT 3` and `FLOAT 3.0` hash identically; `-0.0`
/// normalizes to `0.0`; everything else hashes by bit pattern.
#[inline]
fn float_code(f: f64) -> u64 {
    // Upper bound is exclusive: `i64::MAX as f64` rounds up to 2^63,
    // which is NOT representable as i64 — an inclusive check would let
    // the float 2^63 saturate onto i64::MAX's code and collide with the
    // genuine INT i64::MAX key. The lower bound stays inclusive because
    // -2^63 == i64::MIN exactly. NaN fails `fract() == 0.0` and ±inf
    // fails the range check, so both hash by bit pattern.
    if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 {
        (f as i64) as u64
    } else {
        f.to_bits()
    }
}

/// FNV-1a over the string bytes — no per-row allocation, good avalanche
/// after [`mix`].
#[inline]
fn str_code(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Compute the composite hash vector of `rows` rows over `cols`. The output
/// buffer is reused across batches by the callers (cleared, then filled) —
/// the per-row path performs no allocation.
pub fn hash_key_columns(cols: &[ColumnVector], rows: usize, hashes: &mut Vec<u64>) {
    hashes.clear();
    hashes.resize(rows, 0);
    for (ci, col) in cols.iter().enumerate() {
        let first = ci == 0;
        match col {
            ColumnVector::Int(v) => {
                for (h, &x) in hashes.iter_mut().zip(v) {
                    *h = if first { mix(x as u64) } else { combine(*h, x as u64) };
                }
            }
            ColumnVector::Float(v) => {
                for (h, &x) in hashes.iter_mut().zip(v) {
                    let c = float_code(x);
                    *h = if first { mix(c) } else { combine(*h, c) };
                }
            }
            ColumnVector::Bool(v) => {
                for (h, &x) in hashes.iter_mut().zip(v) {
                    *h = if first { mix(x as u64) } else { combine(*h, x as u64) };
                }
            }
            ColumnVector::Str(v) => {
                for (h, s) in hashes.iter_mut().zip(v) {
                    let c = str_code(s);
                    *h = if first { mix(c) } else { combine(*h, c) };
                }
            }
        }
    }
}

/// SQL equality of one key column pair at `(ai, bi)` — typed, in place, no
/// `Value` materialization. Numeric values compare by value across
/// `INT`/`FLOAT`; floats with identical bit patterns (NaN keys) also match,
/// mirroring the seed's bit-normalized behaviour.
#[inline]
fn col_equal(a: &ColumnVector, ai: usize, b: &ColumnVector, bi: usize) -> bool {
    match (a, b) {
        (ColumnVector::Int(x), ColumnVector::Int(y)) => x[ai] == y[bi],
        (ColumnVector::Float(x), ColumnVector::Float(y)) => {
            x[ai] == y[bi] || x[ai].to_bits() == y[bi].to_bits()
        }
        (ColumnVector::Int(x), ColumnVector::Float(y)) => int_eq_float(x[ai], y[bi]),
        (ColumnVector::Float(x), ColumnVector::Int(y)) => int_eq_float(y[bi], x[ai]),
        (ColumnVector::Bool(x), ColumnVector::Bool(y)) => x[ai] == y[bi],
        (ColumnVector::Str(x), ColumnVector::Str(y)) => x[ai] == y[bi],
        _ => false,
    }
}

#[inline]
fn int_eq_float(i: i64, f: f64) -> bool {
    // Exclusive upper bound for the same reason as `float_code`: the
    // float 2^63 saturates to i64::MAX under `as i64`, which would make
    // it spuriously equal to INT i64::MAX.
    f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 && f as i64 == i
}

/// Composite-key equality of row `ai` of `a` against row `bi` of `b`.
#[inline]
pub fn keys_equal(a: &[ColumnVector], ai: usize, b: &[ColumnVector], bi: usize) -> bool {
    a.iter().zip(b).all(|(ca, cb)| col_equal(ca, ai, cb, bi))
}

/// A bucket-chained hash table over row indices. It stores no keys: entry
/// `i` *is* row `i` of whatever columns the owner retained, and collision
/// resolution is the owner's job via [`keys_equal`]. `u32` indices bound
/// build sides at 4 billion rows — far beyond a vector-at-a-time build.
pub struct KeyTable {
    /// Bucket heads: entry index + 1, `0` = empty. Length is a power of two.
    buckets: Vec<u32>,
    mask: u64,
    /// Per-entry chain link: next entry index + 1, `0` = end.
    next: Vec<u32>,
    /// Per-entry full hash, for cheap rejection before key comparison.
    hashes: Vec<u64>,
}

impl KeyTable {
    /// A table expecting roughly `n` entries.
    pub fn with_capacity(n: usize) -> KeyTable {
        let cap = (n.max(8) * 8 / 7).next_power_of_two();
        KeyTable {
            buckets: vec![0; cap],
            mask: cap as u64 - 1,
            next: Vec::new(),
            hashes: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Append the next row (index `self.len()`) with hash `h`.
    pub fn insert(&mut self, h: u64) {
        if self.next.len() + 1 > self.buckets.len() / 8 * 7 {
            self.grow();
        }
        let entry = self.next.len() as u32;
        assert!(entry != u32::MAX, "build side exceeds u32 row indices");
        let b = (h & self.mask) as usize;
        self.next.push(self.buckets[b]);
        self.hashes.push(h);
        self.buckets[b] = entry + 1;
    }

    fn grow(&mut self) {
        let cap = (self.buckets.len() * 2).max(16);
        self.buckets.clear();
        self.buckets.resize(cap, 0);
        self.mask = cap as u64 - 1;
        for (i, &h) in self.hashes.iter().enumerate() {
            let b = (h & self.mask) as usize;
            self.next[i] = self.buckets[b];
            self.buckets[b] = i as u32 + 1;
        }
    }

    /// Iterate the row indices whose stored hash equals `h`, newest first.
    /// Callers must still confirm with [`keys_equal`].
    #[inline]
    pub fn candidates(&self, h: u64) -> Candidates<'_> {
        let head = self.buckets[(h & self.mask) as usize];
        Candidates { table: self, cursor: head, hash: h }
    }
}

/// Iterator over hash-equal entries of one bucket chain.
pub struct Candidates<'a> {
    table: &'a KeyTable,
    cursor: u32,
    hash: u64,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.cursor != 0 {
            let entry = (self.cursor - 1) as usize;
            self.cursor = self.table.next[entry];
            if self.table.hashes[entry] == self.hash {
                return Some(entry);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(cols: &[ColumnVector]) -> u64 {
        let mut h = Vec::new();
        hash_key_columns(cols, 1, &mut h);
        h[0]
    }

    #[test]
    fn int_and_integral_float_hash_identically() {
        let a = hash_one(&[ColumnVector::Int(vec![3])]);
        let b = hash_one(&[ColumnVector::Float(vec![3.0])]);
        assert_eq!(a, b);
        let c = hash_one(&[ColumnVector::Float(vec![3.5])]);
        assert_ne!(a, c);
    }

    #[test]
    fn negative_zero_normalizes() {
        let a = hash_one(&[ColumnVector::Float(vec![0.0])]);
        let b = hash_one(&[ColumnVector::Float(vec![-0.0])]);
        assert_eq!(a, b);
        let zero = [ColumnVector::Float(vec![0.0])];
        let negzero = [ColumnVector::Float(vec![-0.0])];
        assert!(keys_equal(&zero, 0, &negzero, 0));
    }

    #[test]
    fn cross_type_numeric_equality() {
        let i = [ColumnVector::Int(vec![3, 4])];
        let f = [ColumnVector::Float(vec![3.0, 4.5])];
        assert!(keys_equal(&i, 0, &f, 0));
        assert!(!keys_equal(&i, 1, &f, 1));
        let s = [ColumnVector::Str(vec!["3".into()])];
        assert!(!keys_equal(&i, 0, &s, 0));
    }

    #[test]
    fn string_keys_compare_in_place() {
        let a = [ColumnVector::Str(vec!["edge".into(), "node".into()])];
        let b = [ColumnVector::Str(vec!["node".into()])];
        assert!(keys_equal(&a, 1, &b, 0));
        assert!(!keys_equal(&a, 0, &b, 0));
        assert_eq!(
            hash_one(&[ColumnVector::Str(vec!["node".into()])]),
            hash_one(&[ColumnVector::Str(vec!["node".into()])]),
        );
    }

    #[test]
    fn multi_column_hash_is_order_sensitive() {
        let ab = hash_one(&[ColumnVector::Int(vec![1]), ColumnVector::Int(vec![2])]);
        let ba = hash_one(&[ColumnVector::Int(vec![2]), ColumnVector::Int(vec![1])]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn table_chains_duplicates_and_grows() {
        let mut t = KeyTable::with_capacity(2);
        let hashes: Vec<u64> = (0..200).map(|i| mix(i as u64 % 50)).collect();
        for &h in &hashes {
            t.insert(h);
        }
        assert_eq!(t.len(), 200);
        // Each of the 50 distinct hashes owns 4 entries, newest first.
        let got: Vec<usize> = t.candidates(mix(7)).collect();
        assert_eq!(got, vec![157, 107, 57, 7]);
        // A hash that was never inserted yields nothing.
        assert_eq!(t.candidates(mix(999)).count(), 0);
    }

    #[test]
    fn nan_keys_match_by_bit_pattern() {
        let a = [ColumnVector::Float(vec![f64::NAN])];
        let b = [ColumnVector::Float(vec![f64::NAN])];
        assert!(keys_equal(&a, 0, &b, 0));
        assert_eq!(hash_one(&a), hash_one(&b));
    }

    #[test]
    fn out_of_range_floats_do_not_saturate_onto_int_extremes() {
        // 2^63 is integral but not representable as i64; before the
        // exclusive-bound fix it saturated to i64::MAX and both grouped
        // and compared equal to INT i64::MAX.
        let two_63 = 9_223_372_036_854_775_808.0_f64;
        let int_max = [ColumnVector::Int(vec![i64::MAX])];
        let f = [ColumnVector::Float(vec![two_63])];
        assert!(!keys_equal(&int_max, 0, &f, 0));
        assert!(!int_eq_float(i64::MAX, two_63));
        assert_eq!(float_code(two_63), two_63.to_bits());
        // -2^63 IS exactly i64::MIN — that pairing must keep unifying.
        let min_f = i64::MIN as f64;
        let int_min = [ColumnVector::Int(vec![i64::MIN])];
        let g = [ColumnVector::Float(vec![min_f])];
        assert!(keys_equal(&int_min, 0, &g, 0));
        assert_eq!(hash_one(&int_min), hash_one(&g));
        // Infinities and huge finite floats stay distinct bit-pattern keys.
        assert!(!int_eq_float(i64::MAX, f64::INFINITY));
        assert_ne!(float_code(1e300), float_code(f64::INFINITY));
        assert_ne!(float_code(f64::INFINITY), float_code(f64::NEG_INFINITY));
    }
}
