//! Table scan with SMA block pruning.

use crate::column::Batch;
use crate::error::Result;
use crate::exec::physical::Operator;
use crate::expr::BinaryOp;
use crate::plan::logical::PrunePredicate;
use crate::storage::Table;
use crate::types::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Scans a table block by block. Blocks whose min/max SMA proves the
/// pruning predicates can never match are skipped without being read — the
/// paper's Sec. 4.4 optimization ("applying the filter before joining ...
/// enabling block pruning of the model table").
pub struct ScanExec {
    table: Arc<Table>,
    pruning: Vec<PrunePredicate>,
    /// Restrict to one partition (parallel workers) or scan all.
    partition: Option<usize>,
    /// Restrict to a `[start, end)` block range within each scanned
    /// partition — the sub-partition morsel unit the unified scheduler
    /// steals, so one skewed partition can be balanced across workers.
    blocks: Option<(usize, usize)>,
    /// Per-partition block counts captured at construction: the scan's
    /// snapshot. Blocks are immutable and append-only, so bounding the
    /// cursor by these counts pins a consistent prefix of the table —
    /// concurrent appends (and their WAL/page traffic in persistent
    /// mode) are invisible to an in-flight scan.
    snapshot: Vec<usize>,
    /// (partition, block) cursor.
    cursor: (usize, usize),
    /// Statistics: blocks skipped by SMA pruning.
    pub blocks_pruned: usize,
    /// Statistics: blocks actually read.
    pub blocks_read: usize,
}

impl ScanExec {
    pub fn new(
        table: Arc<Table>,
        pruning: Vec<PrunePredicate>,
        partition: Option<usize>,
    ) -> ScanExec {
        ScanExec::with_blocks(table, pruning, partition, None)
    }

    /// A scan additionally restricted to a block range — used by morsel
    /// execution to split one partition across several tasks.
    pub fn with_blocks(
        table: Arc<Table>,
        pruning: Vec<PrunePredicate>,
        partition: Option<usize>,
        blocks: Option<(usize, usize)>,
    ) -> ScanExec {
        let start_p = partition.unwrap_or(0);
        let start_b = blocks.map_or(0, |(s, _)| s);
        let snapshot = table.snapshot();
        ScanExec {
            table,
            pruning,
            partition,
            blocks,
            snapshot,
            cursor: (start_p, start_b),
            blocks_pruned: 0,
            blocks_read: 0,
        }
    }

    fn block_survives(&self, min: &Value, max: &Value, pred: &PrunePredicate) -> bool {
        let v = &pred.value;
        match pred.op {
            // Some value in [min, max] can equal v.
            BinaryOp::Eq => {
                min.total_cmp(v) != Ordering::Greater && max.total_cmp(v) != Ordering::Less
            }
            BinaryOp::Lt => min.total_cmp(v) == Ordering::Less,
            BinaryOp::LtEq => min.total_cmp(v) != Ordering::Greater,
            BinaryOp::Gt => max.total_cmp(v) == Ordering::Greater,
            BinaryOp::GtEq => max.total_cmp(v) != Ordering::Less,
            // Non-range operators never prune.
            _ => true,
        }
    }
}

impl Operator for ScanExec {
    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            let (p, b) = self.cursor;
            let end_partition = match self.partition {
                Some(part) => part + 1,
                None => self.table.partition_count(),
            };
            if p >= end_partition {
                return Ok(None);
            }
            enum Step {
                EndOfPartition,
                Pruned,
                Read(Result<Batch>),
            }
            let step = self.table.with_partitions(|parts| {
                let part = &parts[p];
                // Bound by the construction-time snapshot: blocks
                // appended since then stay invisible to this scan.
                let snap = self.snapshot.get(p).copied().unwrap_or(0);
                let end_block = self.blocks.map_or(snap, |(_, e)| e.min(snap));
                if b >= end_block {
                    return Step::EndOfPartition;
                }
                for pred in &self.pruning {
                    let (min, max) = part.sma(pred.column, b);
                    if !self.block_survives(min, max, pred) {
                        return Step::Pruned;
                    }
                }
                Step::Read(part.block_batch(b, self.table.storage_env()))
            });
            match step {
                Step::EndOfPartition => {
                    self.cursor = (p + 1, self.blocks.map_or(0, |(s, _)| s));
                }
                Step::Pruned => {
                    self.blocks_pruned += 1;
                    self.cursor = (p, b + 1);
                }
                Step::Read(batch) => {
                    self.blocks_read += 1;
                    self.cursor = (p, b + 1);
                    return Ok(Some(batch?));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnVector;
    use crate::config::EngineConfig;
    use crate::exec::physical::drain;
    use crate::storage::{ColumnDef, Schema};
    use crate::types::DataType;

    fn table() -> Arc<Table> {
        let cfg = EngineConfig { vector_size: 4, partitions: 2, ..Default::default() };
        let t = Arc::new(Table::new(
            "t",
            Schema::new(vec![ColumnDef::new("id", DataType::Int)]).unwrap(),
            &cfg,
        ));
        t.append(vec![ColumnVector::Int((0..16).collect())]).unwrap();
        t
    }

    #[test]
    fn full_scan_reads_everything() {
        let t = table();
        let batches = drain(Box::new(ScanExec::new(t, vec![], None))).unwrap();
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn partition_restricted_scan() {
        let t = table();
        let b0 = drain(Box::new(ScanExec::new(Arc::clone(&t), vec![], Some(0)))).unwrap();
        let b1 = drain(Box::new(ScanExec::new(t, vec![], Some(1)))).unwrap();
        let n0: usize = b0.iter().map(Batch::num_rows).sum();
        let n1: usize = b1.iter().map(Batch::num_rows).sum();
        assert_eq!(n0 + n1, 16);
        assert_eq!(n0, 8);
    }

    #[test]
    fn block_range_scan_splits_a_partition_into_morsels() {
        let t = table();
        // Appends round-robin whole blocks: partition 0 holds blocks
        // [0..4) and [8..12), partition 1 holds [4..8) and [12..16).
        let m0 =
            drain(Box::new(ScanExec::with_blocks(Arc::clone(&t), vec![], Some(0), Some((0, 1)))))
                .unwrap();
        let m1 =
            drain(Box::new(ScanExec::with_blocks(Arc::clone(&t), vec![], Some(0), Some((1, 2)))))
                .unwrap();
        let rows = |bs: &[Batch]| -> Vec<i64> {
            bs.iter().flat_map(|b| b.column(0).as_int().unwrap().to_vec()).collect()
        };
        assert_eq!(rows(&m0), vec![0, 1, 2, 3]);
        assert_eq!(rows(&m1), vec![8, 9, 10, 11]);
        // An end past the real block count clamps instead of panicking.
        let tail =
            drain(Box::new(ScanExec::with_blocks(t, vec![], Some(1), Some((1, 99))))).unwrap();
        assert_eq!(rows(&tail), vec![12, 13, 14, 15]);
    }

    #[test]
    fn sma_pruning_skips_blocks_without_changing_results() {
        let t = table();
        // Blocks hold [0..4), [4..8), [8..12), [12..16): id >= 12 keeps 1.
        let pred = PrunePredicate { column: 0, op: BinaryOp::GtEq, value: Value::Int(12) };
        let mut scan = ScanExec::new(Arc::clone(&t), vec![pred], None);
        scan.open().unwrap();
        let mut rows = Vec::new();
        while let Some(b) = scan.next().unwrap() {
            rows.extend(b.column(0).as_int().unwrap().to_vec());
        }
        assert_eq!(scan.blocks_pruned, 3);
        assert_eq!(scan.blocks_read, 1);
        // The surviving block contains exactly the matching rows (here the
        // block boundary aligns; in general the Filter above re-checks).
        assert_eq!(rows, vec![12, 13, 14, 15]);
    }

    #[test]
    fn eq_pruning_keeps_only_candidate_blocks() {
        let t = table();
        let pred = PrunePredicate { column: 0, op: BinaryOp::Eq, value: Value::Int(5) };
        let mut scan = ScanExec::new(t, vec![pred], None);
        scan.open().unwrap();
        let mut rows = Vec::new();
        while let Some(b) = scan.next().unwrap() {
            rows.extend(b.column(0).as_int().unwrap().to_vec());
        }
        assert_eq!(rows, vec![4, 5, 6, 7]);
        assert_eq!(scan.blocks_pruned, 3);
    }

    #[test]
    fn noteq_never_prunes() {
        let t = table();
        let pred = PrunePredicate { column: 0, op: BinaryOp::NotEq, value: Value::Int(5) };
        let mut scan = ScanExec::new(t, vec![pred], None);
        scan.open().unwrap();
        let mut n = 0;
        while let Some(b) = scan.next().unwrap() {
            n += b.num_rows();
        }
        assert_eq!(n, 16);
        assert_eq!(scan.blocks_pruned, 0);
    }
}
