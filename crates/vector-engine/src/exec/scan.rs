//! Table scan with SMA block pruning.

use crate::column::Batch;
use crate::error::Result;
use crate::exec::physical::Operator;
use crate::expr::BinaryOp;
use crate::plan::logical::PrunePredicate;
use crate::storage::Table;
use crate::types::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Scans a table block by block. Blocks whose min/max SMA proves the
/// pruning predicates can never match are skipped without being read — the
/// paper's Sec. 4.4 optimization ("applying the filter before joining ...
/// enabling block pruning of the model table").
pub struct ScanExec {
    table: Arc<Table>,
    pruning: Vec<PrunePredicate>,
    /// Restrict to one partition (parallel workers) or scan all.
    partition: Option<usize>,
    /// (partition, block) cursor.
    cursor: (usize, usize),
    /// Statistics: blocks skipped by SMA pruning.
    pub blocks_pruned: usize,
    /// Statistics: blocks actually read.
    pub blocks_read: usize,
}

impl ScanExec {
    pub fn new(
        table: Arc<Table>,
        pruning: Vec<PrunePredicate>,
        partition: Option<usize>,
    ) -> ScanExec {
        let start = partition.unwrap_or(0);
        ScanExec { table, pruning, partition, cursor: (start, 0), blocks_pruned: 0, blocks_read: 0 }
    }

    fn block_survives(&self, min: &Value, max: &Value, pred: &PrunePredicate) -> bool {
        let v = &pred.value;
        match pred.op {
            // Some value in [min, max] can equal v.
            BinaryOp::Eq => {
                min.total_cmp(v) != Ordering::Greater && max.total_cmp(v) != Ordering::Less
            }
            BinaryOp::Lt => min.total_cmp(v) == Ordering::Less,
            BinaryOp::LtEq => min.total_cmp(v) != Ordering::Greater,
            BinaryOp::Gt => max.total_cmp(v) == Ordering::Greater,
            BinaryOp::GtEq => max.total_cmp(v) != Ordering::Less,
            // Non-range operators never prune.
            _ => true,
        }
    }
}

impl Operator for ScanExec {
    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            let (p, b) = self.cursor;
            let end_partition = match self.partition {
                Some(part) => part + 1,
                None => self.table.partition_count(),
            };
            if p >= end_partition {
                return Ok(None);
            }
            enum Step {
                EndOfPartition,
                Pruned,
                Read(Batch),
            }
            let step = self.table.with_partitions(|parts| {
                let part = &parts[p];
                if b >= part.block_count() {
                    return Step::EndOfPartition;
                }
                for pred in &self.pruning {
                    let (min, max) = part.sma(pred.column, b);
                    if !self.block_survives(min, max, pred) {
                        return Step::Pruned;
                    }
                }
                Step::Read(part.block_batch(b))
            });
            match step {
                Step::EndOfPartition => {
                    self.cursor = (p + 1, 0);
                }
                Step::Pruned => {
                    self.blocks_pruned += 1;
                    self.cursor = (p, b + 1);
                }
                Step::Read(batch) => {
                    self.blocks_read += 1;
                    self.cursor = (p, b + 1);
                    return Ok(Some(batch));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnVector;
    use crate::config::EngineConfig;
    use crate::exec::physical::drain;
    use crate::storage::{ColumnDef, Schema};
    use crate::types::DataType;

    fn table() -> Arc<Table> {
        let cfg = EngineConfig { vector_size: 4, partitions: 2, ..Default::default() };
        let t = Arc::new(Table::new(
            "t",
            Schema::new(vec![ColumnDef::new("id", DataType::Int)]).unwrap(),
            &cfg,
        ));
        t.append(vec![ColumnVector::Int((0..16).collect())]).unwrap();
        t
    }

    #[test]
    fn full_scan_reads_everything() {
        let t = table();
        let batches = drain(Box::new(ScanExec::new(t, vec![], None))).unwrap();
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn partition_restricted_scan() {
        let t = table();
        let b0 = drain(Box::new(ScanExec::new(Arc::clone(&t), vec![], Some(0)))).unwrap();
        let b1 = drain(Box::new(ScanExec::new(t, vec![], Some(1)))).unwrap();
        let n0: usize = b0.iter().map(Batch::num_rows).sum();
        let n1: usize = b1.iter().map(Batch::num_rows).sum();
        assert_eq!(n0 + n1, 16);
        assert_eq!(n0, 8);
    }

    #[test]
    fn sma_pruning_skips_blocks_without_changing_results() {
        let t = table();
        // Blocks hold [0..4), [4..8), [8..12), [12..16): id >= 12 keeps 1.
        let pred = PrunePredicate { column: 0, op: BinaryOp::GtEq, value: Value::Int(12) };
        let mut scan = ScanExec::new(Arc::clone(&t), vec![pred], None);
        scan.open().unwrap();
        let mut rows = Vec::new();
        while let Some(b) = scan.next().unwrap() {
            rows.extend(b.column(0).as_int().unwrap().to_vec());
        }
        assert_eq!(scan.blocks_pruned, 3);
        assert_eq!(scan.blocks_read, 1);
        // The surviving block contains exactly the matching rows (here the
        // block boundary aligns; in general the Filter above re-checks).
        assert_eq!(rows, vec![12, 13, 14, 15]);
    }

    #[test]
    fn eq_pruning_keeps_only_candidate_blocks() {
        let t = table();
        let pred = PrunePredicate { column: 0, op: BinaryOp::Eq, value: Value::Int(5) };
        let mut scan = ScanExec::new(t, vec![pred], None);
        scan.open().unwrap();
        let mut rows = Vec::new();
        while let Some(b) = scan.next().unwrap() {
            rows.extend(b.column(0).as_int().unwrap().to_vec());
        }
        assert_eq!(rows, vec![4, 5, 6, 7]);
        assert_eq!(scan.blocks_pruned, 3);
    }

    #[test]
    fn noteq_never_prunes() {
        let t = table();
        let pred = PrunePredicate { column: 0, op: BinaryOp::NotEq, value: Value::Int(5) };
        let mut scan = ScanExec::new(t, vec![pred], None);
        scan.open().unwrap();
        let mut n = 0;
        while let Some(b) = scan.next().unwrap() {
            n += b.num_rows();
        }
        assert_eq!(n, 16);
        assert_eq!(scan.blocks_pruned, 0);
    }
}
