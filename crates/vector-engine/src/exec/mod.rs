//! Vectorized physical operators (Volcano `open`/`next`/`close` model, one
//! [`crate::column::Batch`] per `next` call) and plan execution, including
//! the partition-parallel driver.

pub mod agg;
pub mod hash;
pub mod join;
pub mod parallel;
pub mod physical;
pub mod rowwise;
pub mod scan;
pub mod simple;

pub use physical::{build_operator, Operator};
