//! The Volcano operator interface and the logical→physical translation.

use crate::column::Batch;
use crate::error::Result;
use crate::exec::agg::HashAggExec;
use crate::exec::join::{CrossJoinExec, HashJoinExec};
use crate::exec::rowwise::{RowHashAggExec, RowHashJoinExec};
use crate::exec::scan::ScanExec;
use crate::exec::simple::{BatchesExec, FilterExec, LimitExec, ProjectExec, SortExec, ValuesExec};
use crate::plan::logical::LogicalPlan;
use crate::storage::Table;
use std::sync::Arc;

/// A vectorized physical operator following the Volcano iterator model the
/// paper's ModelJoin plugs into (Sec. 5.1): `open()` allocates, `next()`
/// produces one [`Batch`] of at most `vector_size` rows (or `None` when
/// exhausted), `close()` releases resources.
pub trait Operator: Send {
    /// Prepare for execution. Default: nothing to do.
    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    /// Produce the next batch, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Batch>>;

    /// Release resources. Default: nothing to do.
    fn close(&mut self) {}
}

/// Drain an operator into a vector of batches (open → next* → close).
pub fn drain(mut op: Box<dyn Operator>) -> Result<Vec<Batch>> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(batch) = op.next()? {
        if batch.num_rows() > 0 {
            out.push(batch);
        }
    }
    op.close();
    Ok(out)
}

/// Per-execution parameters for operator construction.
#[derive(Clone)]
pub struct ExecContext {
    /// Maximum rows per produced batch.
    pub vector_size: usize,
    /// When set, scans of exactly this table read only the given partition —
    /// the mechanism of the partition-parallel driver. All other tables are
    /// read fully by every worker (the paper's "model table is shared
    /// between the execution threads", Sec. 4.4).
    pub scan_restrict: Option<(Arc<Table>, usize)>,
    /// When set alongside `scan_restrict`, the restricted scan reads only
    /// this `[start, end)` block range — one morsel of the unified
    /// scheduler, so a skewed partition splits across stealable tasks.
    pub scan_blocks: Option<(usize, usize)>,
    /// Unified scheduler pool budget (`EngineConfig::worker_threads`,
    /// resolved), carried to operators that issue tensor kernels. The
    /// engine itself never spawns these threads; consumers (the ModelJoin
    /// crate) hand the value to the kernel dispatch layer.
    pub worker_threads: usize,
    /// Build the seed value-at-a-time join/agg operators instead of the
    /// vectorized ones (`EngineConfig::rowwise_ops`).
    pub rowwise_ops: bool,
    /// Time each operator's `next()` into the per-stage histograms
    /// (`EngineConfig::obs_spans`). Row/batch counters stay on regardless.
    pub obs_spans: bool,
}

impl ExecContext {
    pub fn new(vector_size: usize) -> ExecContext {
        ExecContext {
            vector_size,
            scan_restrict: None,
            scan_blocks: None,
            worker_threads: 1,
            rowwise_ops: false,
            obs_spans: true,
        }
    }

    /// Context for a full (non-partitioned) execution under `config`.
    pub fn from_config(config: &crate::config::EngineConfig) -> ExecContext {
        ExecContext {
            vector_size: config.vector_size,
            scan_restrict: None,
            scan_blocks: None,
            worker_threads: config.effective_worker_threads(),
            rowwise_ops: config.rowwise_ops,
            obs_spans: config.obs_spans,
        }
    }

    pub fn for_partition(
        config: &crate::config::EngineConfig,
        table: Arc<Table>,
        partition: usize,
    ) -> ExecContext {
        ExecContext { scan_restrict: Some((table, partition)), ..ExecContext::from_config(config) }
    }

    /// Context for one scheduler morsel: a block range within one
    /// partition of the driving table.
    pub fn for_morsel(
        config: &crate::config::EngineConfig,
        table: Arc<Table>,
        partition: usize,
        blocks: Option<(usize, usize)>,
    ) -> ExecContext {
        ExecContext {
            scan_restrict: Some((table, partition)),
            scan_blocks: blocks,
            ..ExecContext::from_config(config)
        }
    }
}

/// Instruments an operator with the stage metrics of its plan kind: every
/// `next()` counts the produced batch and rows, and (when spans are on)
/// records its wall time. The timing is *inclusive* — an operator's
/// `next()` pulls from its children inside the measured window — so stage
/// times overlap and must be read as "time spent with this stage on top
/// of the iterator stack's call path", not a disjoint breakdown.
struct MeteredOp {
    inner: Box<dyn Operator>,
    stage: &'static obs::StageMetrics,
    spans: bool,
}

impl Operator for MeteredOp {
    fn open(&mut self) -> Result<()> {
        self.inner.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let result = if self.spans {
            let _span = obs::span(&self.stage.time_us);
            self.inner.next()
        } else {
            self.inner.next()
        };
        if let Ok(Some(batch)) = &result {
            self.stage.batches.add(1);
            self.stage.rows.add(batch.num_rows() as u64);
        }
        result
    }

    fn close(&mut self) {
        self.inner.close()
    }
}

/// The stage-metric bundle a plan node reports under.
fn stage_of(plan: &LogicalPlan) -> &'static obs::StageMetrics {
    match plan {
        LogicalPlan::Scan { .. } => &obs::metrics::EXEC_SCAN,
        LogicalPlan::Filter { .. } => &obs::metrics::EXEC_FILTER,
        LogicalPlan::Project { .. } => &obs::metrics::EXEC_PROJECT,
        LogicalPlan::CrossJoin { .. } | LogicalPlan::HashJoin { .. } => &obs::metrics::EXEC_JOIN,
        LogicalPlan::Aggregate { .. } => &obs::metrics::EXEC_AGG,
        LogicalPlan::Sort { .. } => &obs::metrics::EXEC_SORT,
        LogicalPlan::Limit { .. } | LogicalPlan::Values { .. } => &obs::metrics::EXEC_OTHER,
    }
}

/// Translate a logical plan into an operator tree. Every operator is
/// wrapped in a [`MeteredOp`] reporting into its stage's metrics.
pub fn build_operator(plan: &LogicalPlan, ctx: &ExecContext) -> Result<Box<dyn Operator>> {
    let inner = build_operator_inner(plan, ctx)?;
    Ok(Box::new(MeteredOp { inner, stage: stage_of(plan), spans: ctx.obs_spans }))
}

fn build_operator_inner(plan: &LogicalPlan, ctx: &ExecContext) -> Result<Box<dyn Operator>> {
    Ok(match plan {
        LogicalPlan::Scan { table, pruning, .. } => {
            let (partition, blocks) = match &ctx.scan_restrict {
                Some((t, p)) if Arc::ptr_eq(t, table) => (Some(*p), ctx.scan_blocks),
                _ => (None, None),
            };
            Box::new(ScanExec::with_blocks(Arc::clone(table), pruning.clone(), partition, blocks))
        }
        LogicalPlan::Filter { input, predicate } => {
            Box::new(FilterExec::new(build_operator(input, ctx)?, predicate.clone()))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            Box::new(ProjectExec::new(build_operator(input, ctx)?, exprs.clone()))
        }
        LogicalPlan::CrossJoin { left, right, .. } => Box::new(CrossJoinExec::new(
            build_operator(left, ctx)?,
            build_operator(right, ctx)?,
            ctx.vector_size,
        )),
        LogicalPlan::HashJoin { left, right, left_keys, right_keys, .. } => {
            let (l, r) = (build_operator(left, ctx)?, build_operator(right, ctx)?);
            let (lk, rk) = (left_keys.clone(), right_keys.clone());
            if ctx.rowwise_ops {
                Box::new(RowHashJoinExec::new(l, r, lk, rk, ctx.vector_size))
            } else {
                Box::new(HashJoinExec::new(l, r, lk, rk, ctx.vector_size))
            }
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let input = build_operator(input, ctx)?;
            if ctx.rowwise_ops {
                Box::new(RowHashAggExec::new(
                    input,
                    group.clone(),
                    aggs.clone(),
                    schema.types(),
                    ctx.vector_size,
                ))
            } else {
                Box::new(HashAggExec::new(
                    input,
                    group.clone(),
                    aggs.clone(),
                    schema.types(),
                    ctx.vector_size,
                ))
            }
        }
        LogicalPlan::Sort { input, keys } => {
            Box::new(SortExec::new(build_operator(input, ctx)?, keys.clone(), ctx.vector_size))
        }
        LogicalPlan::Limit { input, n } => {
            Box::new(LimitExec::new(build_operator(input, ctx)?, *n))
        }
        LogicalPlan::Values { rows, schema } => {
            Box::new(ValuesExec::new(rows.clone(), schema.types()))
        }
    })
}

/// Wrap pre-computed batches as an operator (used by the parallel driver to
/// apply the serial tail of a plan over gathered partition results).
pub fn batches_operator(batches: Vec<Batch>) -> Box<dyn Operator> {
    Box::new(BatchesExec::new(batches))
}
