//! The seed value-at-a-time join and aggregation operators, retained
//! verbatim (renamed `Row*`) after the vectorized rewrite of
//! [`crate::exec::join`] / [`crate::exec::agg`].
//!
//! They serve two purposes:
//!
//! * the **naive oracle** the property tests pin the vectorized operators
//!   against (`tests/exec_equivalence.rs`), and
//! * the **pre-PR baseline** of the ML-To-SQL end-to-end benchmark
//!   (`bench --bin ml2sql_sweep`), selected via
//!   [`crate::config::EngineConfig::rowwise_ops`].
//!
//! Their cost profile is exactly what the rewrite removes: a heap-allocated
//! `Vec<KeyPart>` per row (cloning every string key), SipHash over an enum
//! tree, and per-cell `Value` round-trips through the accumulator dispatch.

use crate::column::{Batch, ColumnVector};
use crate::error::{EngineError, Result};
use crate::exec::physical::Operator;
use crate::exec::simple::concat_batches;
use crate::expr::Expr;
use crate::plan::logical::{AggFunc, AggSpec};
use crate::types::{DataType, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A hashable, type-normalized join/group key component. Numeric values
/// that represent the same number (e.g. `INT 3` and `FLOAT 3.0`) map to the
/// same key, matching SQL equality.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum KeyPart {
    Int(i64),
    /// Non-integral float, by bit pattern (`-0.0` normalized to `0.0`).
    FloatBits(u64),
    Bool(bool),
    Str(String),
}

/// Normalize a value into a [`KeyPart`].
pub fn key_part(v: &Value) -> KeyPart {
    match v {
        Value::Int(i) => KeyPart::Int(*i),
        Value::Float(f) => {
            // Exclusive upper bound: `i64::MAX as f64` rounds up to 2^63,
            // so an inclusive check would saturate the float 2^63 onto
            // i64::MAX (see `hash::float_code`, which must stay in sync).
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f < i64::MAX as f64 {
                KeyPart::Int(*f as i64)
            } else {
                KeyPart::FloatBits(f.to_bits())
            }
        }
        Value::Bool(b) => KeyPart::Bool(*b),
        Value::Str(s) => KeyPart::Str(s.clone()),
    }
}

/// Extract the composite key of row `row` from evaluated key columns.
pub fn row_key(cols: &[ColumnVector], row: usize) -> Vec<KeyPart> {
    cols.iter().map(|c| key_part(&c.value(row))).collect()
}

fn glue(left: Batch, right: Batch) -> Batch {
    let mut cols = left.into_columns();
    cols.extend(right.into_columns());
    Batch::new(cols)
}

/// The seed inner hash equi-join: build a `HashMap<Vec<KeyPart>, Vec<usize>>`
/// over the right side, probe one row at a time.
pub struct RowHashJoinExec {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_keys: Vec<Expr>,
    right_keys: Vec<Expr>,
    vector_size: usize,
    built: Option<BuildSide>,
    /// Carry-over matches of the current probe batch.
    pending: Option<Pending>,
}

struct BuildSide {
    batch: Batch,
    table: HashMap<Vec<KeyPart>, Vec<usize>>,
}

struct Pending {
    left_batch: Batch,
    pairs: Vec<(usize, usize)>,
    offset: usize,
}

impl RowHashJoinExec {
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        vector_size: usize,
    ) -> RowHashJoinExec {
        assert_eq!(left_keys.len(), right_keys.len(), "key arity mismatch");
        RowHashJoinExec {
            left,
            right,
            left_keys,
            right_keys,
            vector_size: vector_size.max(1),
            built: None,
            pending: None,
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut batches = Vec::new();
        while let Some(b) = self.right.next()? {
            batches.push(b);
        }
        let batch = concat_batches(&batches);
        let mut table: HashMap<Vec<KeyPart>, Vec<usize>> = HashMap::new();
        if batch.num_rows() > 0 {
            let key_cols: Result<Vec<ColumnVector>> =
                self.right_keys.iter().map(|e| e.eval(&batch)).collect();
            let key_cols = key_cols?;
            for row in 0..batch.num_rows() {
                table.entry(row_key(&key_cols, row)).or_default().push(row);
            }
        }
        self.built = Some(BuildSide { batch, table });
        Ok(())
    }

    fn emit(&mut self) -> Option<Batch> {
        let build = self.built.as_ref().expect("built");
        let pending = self.pending.as_mut()?;
        if pending.offset >= pending.pairs.len() {
            self.pending = None;
            return None;
        }
        let end = (pending.offset + self.vector_size).min(pending.pairs.len());
        let chunk = &pending.pairs[pending.offset..end];
        let li: Vec<usize> = chunk.iter().map(|p| p.0).collect();
        let ri: Vec<usize> = chunk.iter().map(|p| p.1).collect();
        let out = glue(pending.left_batch.take(&li), build.batch.take(&ri));
        pending.offset = end;
        if pending.offset >= pending.pairs.len() {
            self.pending = None;
        }
        Some(out)
    }
}

impl Operator for RowHashJoinExec {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.built.is_none() {
            self.build()?;
        }
        loop {
            if let Some(batch) = self.emit() {
                return Ok(Some(batch));
            }
            let build_empty = self.built.as_ref().expect("built").table.is_empty();
            let Some(left_batch) = self.left.next()? else {
                return Ok(None);
            };
            if build_empty || left_batch.num_rows() == 0 {
                continue;
            }
            let key_cols: Result<Vec<ColumnVector>> =
                self.left_keys.iter().map(|e| e.eval(&left_batch)).collect();
            let key_cols = key_cols?;
            let build = self.built.as_ref().expect("built");
            let mut pairs = Vec::new();
            for row in 0..left_batch.num_rows() {
                if let Some(matches) = build.table.get(&row_key(&key_cols, row)) {
                    for &r in matches {
                        pairs.push((row, r));
                    }
                }
            }
            if pairs.is_empty() {
                continue;
            }
            self.pending = Some(Pending { left_batch, pairs, offset: 0 });
        }
    }

    fn close(&mut self) {
        self.built = None;
        self.pending = None;
        self.left.close();
        self.right.close();
    }
}

/// Per-group accumulator of the seed aggregation.
#[derive(Clone, Debug)]
enum AggState {
    SumInt(i64),
    SumFloat(f64),
    Count(i64),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(spec: &AggSpec, result_type: DataType) -> AggState {
        match spec.func {
            AggFunc::Sum => {
                if result_type == DataType::Int {
                    AggState::SumInt(0)
                } else {
                    AggState::SumFloat(0.0)
                }
            }
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(acc) => {
                *acc += value.expect("SUM has an argument").as_i64()?;
            }
            AggState::SumFloat(acc) => {
                *acc += value.expect("SUM has an argument").as_f64()?;
            }
            AggState::Avg { sum, count } => {
                *sum += value.expect("AVG has an argument").as_f64()?;
                *count += 1;
            }
            AggState::Min(cur) => {
                let v = value.expect("MIN has an argument");
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Less) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = value.expect("MAX has an argument");
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Greater) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> Result<Value> {
        Ok(match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(v) => Value::Int(v),
            AggState::SumFloat(v) => Value::Float(v),
            // SQL's AVG over an empty group is NULL; in the NULL-free engine
            // the global empty case surfaces as 0.0 (documented).
            AggState::Avg { sum, count } => {
                Value::Float(if count == 0 { 0.0 } else { sum / count as f64 })
            }
            AggState::Min(v) => v.ok_or_else(|| {
                EngineError::Execution("MIN over empty input requires NULL support".into())
            })?,
            AggState::Max(v) => v.ok_or_else(|| {
                EngineError::Execution("MAX over empty input requires NULL support".into())
            })?,
        })
    }
}

/// The seed hash-based grouping aggregation: one `Vec<KeyPart>` lookup and
/// one boxed-`Value` accumulator dispatch per input row. Emits groups in
/// first-seen order, like the vectorized operator.
pub struct RowHashAggExec {
    input: Box<dyn Operator>,
    group: Vec<Expr>,
    aggs: Vec<AggSpec>,
    /// Output column types: group columns then aggregate columns.
    output_types: Vec<DataType>,
    vector_size: usize,
    /// Result after the build phase.
    result: Option<Batch>,
    offset: usize,
}

impl RowHashAggExec {
    pub fn new(
        input: Box<dyn Operator>,
        group: Vec<Expr>,
        aggs: Vec<AggSpec>,
        output_types: Vec<DataType>,
        vector_size: usize,
    ) -> RowHashAggExec {
        RowHashAggExec {
            input,
            group,
            aggs,
            output_types,
            vector_size: vector_size.max(1),
            result: None,
            offset: 0,
        }
    }

    fn compute(&mut self) -> Result<()> {
        let ngroup = self.group.len();
        let agg_types: Vec<DataType> = self.output_types[ngroup..].to_vec();

        // group key -> index into `groups`
        let mut index: HashMap<Vec<KeyPart>, usize> = HashMap::new();
        // first-seen group values + accumulator states
        let mut group_rows: Vec<Vec<Value>> = Vec::new();
        let mut states: Vec<Vec<AggState>> = Vec::new();

        while let Some(batch) = self.input.next()? {
            if batch.num_rows() == 0 {
                continue;
            }
            let key_cols: Result<Vec<ColumnVector>> =
                self.group.iter().map(|e| e.eval(&batch)).collect();
            let key_cols = key_cols?;
            let arg_cols: Result<Vec<Option<ColumnVector>>> = self
                .aggs
                .iter()
                .map(|s| s.arg.as_ref().map(|a| a.eval(&batch)).transpose())
                .collect();
            let arg_cols = arg_cols?;
            for row in 0..batch.num_rows() {
                let key = row_key(&key_cols, row);
                let gi = match index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        let gi = group_rows.len();
                        index.insert(key, gi);
                        group_rows.push(key_cols.iter().map(|c| c.value(row)).collect());
                        states.push(
                            self.aggs
                                .iter()
                                .zip(&agg_types)
                                .map(|(s, t)| AggState::new(s, *t))
                                .collect(),
                        );
                        gi
                    }
                };
                for (ai, state) in states[gi].iter_mut().enumerate() {
                    let arg = arg_cols[ai].as_ref().map(|c| c.value(row));
                    state.update(arg.as_ref())?;
                }
            }
        }

        // A global aggregate (no GROUP BY) emits exactly one row even for
        // empty input.
        if ngroup == 0 && group_rows.is_empty() {
            group_rows.push(Vec::new());
            states.push(
                self.aggs.iter().zip(&agg_types).map(|(s, t)| AggState::new(s, *t)).collect(),
            );
        }

        let mut cols: Vec<ColumnVector> =
            self.output_types.iter().map(|t| ColumnVector::empty(*t)).collect();
        for (gvals, gstates) in group_rows.into_iter().zip(states) {
            for (c, v) in cols.iter_mut().zip(gvals.iter()) {
                // Group values can be INT where the schema says FLOAT
                // (promotion); push handles the widening.
                c.push(v.clone().cast(c.data_type())?)?;
            }
            for (ai, state) in gstates.into_iter().enumerate() {
                let v = state.finalize()?;
                let col = &mut cols[ngroup + ai];
                col.push(v.cast(col.data_type())?)?;
            }
        }
        self.result = Some(Batch::new(cols));
        Ok(())
    }
}

impl Operator for RowHashAggExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.result.is_none() {
            self.compute()?;
        }
        let result = self.result.as_ref().expect("computed");
        if self.offset >= result.num_rows() {
            return Ok(None);
        }
        let end = (self.offset + self.vector_size).min(result.num_rows());
        let out = result.slice(self.offset, end);
        self.offset = end;
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.result = None;
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::physical::drain;
    use crate::exec::simple::ValuesExec;

    #[test]
    fn key_part_normalization() {
        assert_eq!(key_part(&Value::Int(3)), key_part(&Value::Float(3.0)));
        assert_ne!(key_part(&Value::Float(3.5)), key_part(&Value::Int(3)));
        assert_eq!(key_part(&Value::Float(0.0)), key_part(&Value::Float(-0.0)));
        assert_eq!(key_part(&Value::Str("a".into())), KeyPart::Str("a".into()));
    }

    #[test]
    fn key_part_range_boundaries_match_hash_path() {
        // 2^63 (integral, > i64::MAX) must NOT normalize onto Int.
        let two_63 = 9_223_372_036_854_775_808.0_f64;
        assert_eq!(key_part(&Value::Float(two_63)), KeyPart::FloatBits(two_63.to_bits()));
        assert_ne!(key_part(&Value::Float(two_63)), key_part(&Value::Int(i64::MAX)));
        // -2^63 is exactly i64::MIN and keeps unifying.
        assert_eq!(key_part(&Value::Float(i64::MIN as f64)), KeyPart::Int(i64::MIN));
        // NaN and infinities stay bit-pattern keys.
        assert_eq!(key_part(&Value::Float(f64::NAN)), KeyPart::FloatBits(f64::NAN.to_bits()));
        assert_ne!(key_part(&Value::Float(f64::INFINITY)), key_part(&Value::Float(1e300)));
    }

    #[test]
    fn rowwise_join_and_agg_still_run() {
        let ints = |ns: Vec<i64>| -> Box<dyn Operator> {
            let rows = ns.into_iter().map(|n| vec![Value::Int(n)]).collect();
            Box::new(ValuesExec::new(rows, vec![DataType::Int]))
        };
        let j = RowHashJoinExec::new(
            ints(vec![1, 2, 3]),
            ints(vec![2, 2, 5]),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
            1024,
        );
        let batches = drain(Box::new(j)).unwrap();
        let total: usize = batches.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 2);

        let a = RowHashAggExec::new(
            ints(vec![1, 1, 2]),
            vec![Expr::col(0)],
            vec![AggSpec { func: AggFunc::Count, arg: None }],
            vec![DataType::Int, DataType::Int],
            1024,
        );
        let batches = drain(Box::new(a)).unwrap();
        assert_eq!(batches[0].row(0), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(batches[0].row(1), vec![Value::Int(2), Value::Int(1)]);
    }
}
