//! Partition-parallel plan execution.
//!
//! Mirrors the paper's x100 parallelism model (Sec. 4.4 / 5.2): the largest
//! scanned table is the partitioned one; each worker thread runs a private
//! copy of the plan restricted to its partitions while all other tables
//! (e.g. the model table) are read fully by every worker. Parallelism is
//! only used when it provably preserves results:
//!
//! * the partitioned table is scanned exactly once in the plan,
//! * every aggregation groups on a column that traces back to a declared
//!   unique column of the partitioned table (so no group spans partitions —
//!   the paper's "no repartitioning is necessary" argument), and
//! * the parallel section contains no `LIMIT`.
//!
//! Top-level `ORDER BY` / `LIMIT` are peeled off and applied serially over
//! the gathered partition results.

use crate::column::Batch;
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::exec::physical::{batches_operator, build_operator, drain, ExecContext, Operator};
use crate::exec::simple::{LimitExec, SortExec};
use crate::expr::Expr;
use crate::plan::logical::LogicalPlan;
use crate::storage::Table;
use std::sync::Arc;

/// Execute a plan to completion, using partition parallelism when safe.
pub fn execute(plan: &LogicalPlan, config: &EngineConfig) -> Result<Vec<Batch>> {
    // Peel the serial tail.
    let mut post: Vec<PostOp> = Vec::new();
    let mut core = plan;
    loop {
        match core {
            LogicalPlan::Sort { input, keys } => {
                post.push(PostOp::Sort(keys.clone()));
                core = input;
            }
            LogicalPlan::Limit { input, n } => {
                post.push(PostOp::Limit(*n));
                core = input;
            }
            _ => break,
        }
    }

    let target = if config.parallelism > 1 { choose_partition_table(core) } else { None };

    let batches = match target {
        Some(table) => execute_partitioned(core, &table, config)?,
        None => drain(build_operator(core, &ExecContext::from_config(config))?)?,
    };

    // Apply the peeled tail serially (innermost first).
    let mut op: Box<dyn Operator> = batches_operator(batches);
    for p in post.into_iter().rev() {
        op = match p {
            PostOp::Sort(keys) => Box::new(SortExec::new(op, keys, config.vector_size)),
            PostOp::Limit(n) => Box::new(LimitExec::new(op, n)),
        };
    }
    drain(op)
}

enum PostOp {
    Sort(Vec<(Expr, bool)>),
    Limit(u64),
}

fn execute_partitioned(
    plan: &LogicalPlan,
    table: &Arc<Table>,
    config: &EngineConfig,
) -> Result<Vec<Batch>> {
    let partitions = table.partition_count();
    let workers = config.parallelism.min(partitions).max(1);
    let mut slots: Vec<Result<Vec<Batch>>> = (0..partitions).map(|_| Ok(Vec::new())).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let table = Arc::clone(table);
            handles.push(scope.spawn(move || -> Vec<(usize, Result<Vec<Batch>>)> {
                let mut out = Vec::new();
                let mut p = w;
                while p < partitions {
                    let ctx = ExecContext::for_partition(config, Arc::clone(&table), p);
                    let result = build_operator(plan, &ctx).and_then(drain);
                    out.push((p, result));
                    p += workers;
                }
                out
            }));
        }
        for h in handles {
            let results =
                h.join().map_err(|_| EngineError::Execution("parallel worker panicked".into()));
            match results {
                Ok(results) => {
                    for (p, r) in results {
                        slots[p] = r;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })?;

    // Gather in partition order for deterministic output.
    let mut out = Vec::new();
    for slot in slots {
        out.extend(slot?);
    }
    Ok(out)
}

/// Pick the table to partition: the largest multi-partition scanned table
/// for which partitioned execution is provably safe.
fn choose_partition_table(plan: &LogicalPlan) -> Option<Arc<Table>> {
    let mut tables: Vec<Arc<Table>> = Vec::new();
    collect_scan_tables(plan, &mut tables);
    // Deduplicate by identity, remembering scan counts.
    let mut uniq: Vec<(Arc<Table>, usize)> = Vec::new();
    for t in tables {
        match uniq.iter_mut().find(|(u, _)| Arc::ptr_eq(u, &t)) {
            Some((_, n)) => *n += 1,
            None => uniq.push((t, 1)),
        }
    }
    uniq.sort_by_key(|(t, _)| std::cmp::Reverse(t.row_count()));
    for (table, scans) in uniq {
        if scans == 1 && table.partition_count() > 1 && is_safe(plan, &table) {
            return Some(table);
        }
    }
    None
}

fn collect_scan_tables(plan: &LogicalPlan, out: &mut Vec<Arc<Table>>) {
    match plan {
        LogicalPlan::Scan { table, .. } => out.push(Arc::clone(table)),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => collect_scan_tables(input, out),
        LogicalPlan::CrossJoin { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            collect_scan_tables(left, out);
            collect_scan_tables(right, out);
        }
        LogicalPlan::Values { .. } => {}
    }
}

/// Is partition-parallel execution over `table` result-preserving?
fn is_safe(plan: &LogicalPlan, table: &Arc<Table>) -> bool {
    match plan {
        // A nested LIMIT would multiply across partitions.
        LogicalPlan::Limit { .. } => false,
        LogicalPlan::Aggregate { input, group, .. } => {
            let grouped_on_key = group.iter().any(|g| {
                if let Expr::Column(i) = g {
                    matches!(
                        column_source(input, *i),
                        Some((src, col)) if Arc::ptr_eq(&src, table)
                            && src.is_unique_column(col)
                    )
                } else {
                    false
                }
            });
            grouped_on_key && is_safe(input, table)
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. } => is_safe(input, table),
        LogicalPlan::CrossJoin { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            is_safe(left, table) && is_safe(right, table)
        }
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => true,
    }
}

/// Trace an output column of `plan` back to a base table column, if the
/// lineage is a pure passthrough.
fn column_source(plan: &LogicalPlan, idx: usize) -> Option<(Arc<Table>, usize)> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some((Arc::clone(table), idx)),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => column_source(input, idx),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(idx)? {
            Expr::Column(i) => column_source(input, *i),
            _ => None,
        },
        LogicalPlan::CrossJoin { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            let nleft = left.schema().len();
            if idx < nleft {
                column_source(left, idx)
            } else {
                column_source(right, idx - nleft)
            }
        }
        LogicalPlan::Aggregate { input, group, .. } => match group.get(idx)? {
            Expr::Column(i) => column_source(input, *i),
            _ => None,
        },
        LogicalPlan::Values { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::column::ColumnVector;
    use crate::plan::binder::Binder;
    use crate::plan::optimizer::Optimizer;
    use crate::sql::{parse_statement, Statement};
    use crate::storage::{ColumnDef, Schema};
    use crate::types::{DataType, Value};

    fn setup(config: &EngineConfig) -> Catalog {
        let cat = Catalog::new();
        let facts = cat
            .create_table(
                "facts",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Float),
                ])
                .unwrap(),
                config,
            )
            .unwrap();
        let n = 50i64;
        facts
            .append(vec![
                ColumnVector::Int((0..n).collect()),
                ColumnVector::Float((0..n).map(|i| i as f64 * 0.5).collect()),
            ])
            .unwrap();
        facts.declare_unique("id").unwrap();
        cat
    }

    fn run(sql: &str, config: &EngineConfig, cat: &Catalog) -> Vec<Vec<Value>> {
        let binder = Binder::new(cat);
        let Statement::Select(s) = parse_statement(sql).unwrap() else { panic!() };
        let plan = Optimizer::new(config.clone()).optimize(binder.bind_select(&s).unwrap());
        let batches = execute(&plan, config).unwrap();
        let mut rows = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                rows.push(b.row(r));
            }
        }
        rows
    }

    #[test]
    fn parallel_and_serial_agree_on_grouped_aggregate() {
        let par =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let ser =
            EngineConfig { vector_size: 8, partitions: 1, parallelism: 1, ..Default::default() };
        let sql = "SELECT id, SUM(v) AS s FROM facts GROUP BY id ORDER BY id";
        let a = run(sql, &par, &setup(&par));
        let b = run(sql, &ser, &setup(&ser));
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn order_by_is_applied_after_gather() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let rows = run("SELECT id FROM facts ORDER BY id DESC LIMIT 3", &cfg, &setup(&cfg));
        assert_eq!(rows, vec![vec![Value::Int(49)], vec![Value::Int(48)], vec![Value::Int(47)]]);
    }

    #[test]
    fn unsafe_group_by_falls_back_to_serial_but_stays_correct() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let cat = setup(&cfg);
        // Group key id % 5 spans partitions: must not be parallelized.
        let rows = run(
            "SELECT id % 5 AS g, COUNT(*) AS n FROM facts GROUP BY id % 5 ORDER BY 1",
            &cfg,
            &cat,
        );
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[1] == Value::Int(10)));
    }

    #[test]
    fn choose_rejects_tables_scanned_twice() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let cat = setup(&cfg);
        // Self join: the table appears twice, so no partition target exists;
        // results must still be correct (serial fallback).
        let rows = run(
            "SELECT a.id FROM facts a, facts b WHERE a.id = b.id AND a.id < 5 ORDER BY 1",
            &cfg,
            &cat,
        );
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn lineage_through_projection() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let cat = setup(&cfg);
        // id flows through a subquery projection into the GROUP BY: still
        // parallel-safe, and correct either way.
        let rows = run(
            "SELECT key, SUM(val) FROM \
             (SELECT id AS key, v * 2 AS val FROM facts) AS q \
             GROUP BY key ORDER BY key LIMIT 2",
            &cfg,
            &cat,
        );
        assert_eq!(rows[0], vec![Value::Int(0), Value::Float(0.0)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Float(1.0)]);
    }
}
