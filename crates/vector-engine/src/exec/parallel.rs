//! Partition-parallel plan execution.
//!
//! Mirrors the paper's x100 parallelism model (Sec. 4.4 / 5.2): the largest
//! scanned table is the partitioned one; each worker thread runs a private
//! copy of the plan restricted to its partitions while all other tables
//! (e.g. the model table) are read fully by every worker. Parallelism is
//! only used when it provably preserves results:
//!
//! * the partitioned table is scanned exactly once in the plan,
//! * every aggregation groups on a column that traces back to a declared
//!   unique column of the partitioned table (so no group spans partitions —
//!   the paper's "no repartitioning is necessary" argument), and
//! * the parallel section contains no `LIMIT`.
//!
//! When the top-level node is an aggregation whose *group key does not*
//! satisfy the unique-column rule but whose input is otherwise partition-
//! safe, the driver falls back to a **partial-aggregate** plan instead of
//! serial execution: each worker folds its partitions into a typed
//! [`GroupedAggState`] and the partials are merged in partition order — the
//! classic local/global aggregation split, enabled by the vectorized
//! accumulators (`EngineConfig::rowwise_ops` disables it together with the
//! vectorized operators). Group order stays deterministic (first seen in
//! partition order); floating-point sums may differ from serial execution
//! in the last bits because partials reassociate the additions.
//!
//! Top-level `ORDER BY` / `LIMIT` are peeled off and applied serially over
//! the gathered partition results.
//!
//! Under the unified scheduler (`EngineConfig::unified_sched`, default)
//! the unit of parallelism is the **morsel** — a block range within one
//! partition, at most [`MORSEL_ROWS`] rows — submitted as Query-class
//! tasks to the process-wide work-stealing pool in `crates/sched`. The
//! driving thread cooperatively runs its own morsels while waiting, so
//! queries never spawn threads, and stealing balances skewed partitions.
//! Results (and partial-aggregate merges) are gathered in (partition,
//! block-range) order, preserving the legacy path's deterministic output.
//! When the flag is off, the pre-scheduler per-query `thread::scope`
//! strategy below runs instead (kept as the benchmark baseline).

use crate::column::Batch;
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::exec::agg::GroupedAggState;
use crate::exec::physical::{batches_operator, build_operator, drain, ExecContext, Operator};
use crate::exec::simple::{LimitExec, SortExec};
use crate::expr::Expr;
use crate::plan::logical::{AggSpec, LogicalPlan};
use crate::storage::Table;
use crate::types::DataType;
use std::sync::Arc;

/// Target rows per scheduler morsel: large enough that per-task overhead
/// vanishes, small enough that stealing can balance a skewed partition.
const MORSEL_ROWS: usize = 65536;

/// Execute a plan to completion, using partition parallelism when safe.
pub fn execute(plan: &LogicalPlan, config: &EngineConfig) -> Result<Vec<Batch>> {
    if config.unified_sched {
        // Grow-only and cheap when already satisfied; direct callers
        // (tests, benches) get a sized pool without an Engine.
        sched::configure_workers(config.effective_worker_threads());
    }
    // Peel the serial tail.
    let mut post: Vec<PostOp> = Vec::new();
    let mut core = plan;
    loop {
        match core {
            LogicalPlan::Sort { input, keys } => {
                post.push(PostOp::Sort(keys.clone()));
                core = input;
            }
            LogicalPlan::Limit { input, n } => {
                post.push(PostOp::Limit(*n));
                core = input;
            }
            _ => break,
        }
    }

    let target = if config.parallelism > 1 { choose_partition_table(core) } else { None };

    let batches = match target {
        Some(table) => execute_partitioned(core, &table, config)?,
        None => match partial_agg_target(core, config) {
            Some((table, input, group, aggs, types)) => {
                execute_partial_agg(input, group, aggs, &types, &table, config)?
            }
            None => drain(build_operator(core, &ExecContext::from_config(config))?)?,
        },
    };

    // Apply the peeled tail serially (innermost first).
    let mut op: Box<dyn Operator> = batches_operator(batches);
    for p in post.into_iter().rev() {
        op = match p {
            PostOp::Sort(keys) => Box::new(SortExec::new(op, keys, config.vector_size)),
            PostOp::Limit(n) => Box::new(LimitExec::new(op, n)),
        };
    }
    drain(op)
}

enum PostOp {
    Sort(Vec<(Expr, bool)>),
    Limit(u64),
}

/// The morsel list for `table`: `(partition, [start, end) block range)`
/// entries in (partition, range) order, covering every block exactly once.
/// Empty partitions contribute nothing.
fn build_morsels(table: &Arc<Table>, config: &EngineConfig) -> Vec<(usize, (usize, usize))> {
    let block_counts: Vec<usize> =
        table.with_partitions(|parts| parts.iter().map(|p| p.block_count()).collect());
    let blocks_per_morsel = (MORSEL_ROWS / config.vector_size.max(1)).max(1);
    let mut morsels = Vec::new();
    for (p, &blocks) in block_counts.iter().enumerate() {
        let mut start = 0;
        while start < blocks {
            let end = (start + blocks_per_morsel).min(blocks);
            morsels.push((p, (start, end)));
            start = end;
        }
    }
    morsels
}

/// Run borrowed tasks on the global scheduler as Query-class work,
/// converting a task panic into the same execution error the legacy
/// `thread::scope` path reports.
fn run_on_scheduler(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) -> Result<()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sched::global().run_scoped(sched::TaskClass::Query, tasks)
    }))
    .map_err(|_| EngineError::Execution("parallel worker panicked".into()))
}

/// If `core` is an aggregation that the group-on-unique-key rule rejects
/// but whose input alone is partition-safe, pick the partial-aggregate
/// plan: the partition table plus the aggregation pieces.
#[allow(clippy::type_complexity)]
fn partial_agg_target<'p>(
    core: &'p LogicalPlan,
    config: &EngineConfig,
) -> Option<(Arc<Table>, &'p LogicalPlan, &'p [Expr], &'p [AggSpec], Vec<DataType>)> {
    if config.parallelism <= 1 || config.rowwise_ops {
        return None;
    }
    let LogicalPlan::Aggregate { input, group, aggs, schema } = core else {
        return None;
    };
    let table = choose_partition_table(input)?;
    Some((table, input, group, aggs, schema.types()))
}

/// Run `input` once per partition, folding each partition into a typed
/// [`GroupedAggState`]; merge the partials in partition order and finalize.
fn execute_partial_agg(
    input: &LogicalPlan,
    group: &[Expr],
    aggs: &[AggSpec],
    output_types: &[DataType],
    table: &Arc<Table>,
    config: &EngineConfig,
) -> Result<Vec<Batch>> {
    let partitions = table.partition_count();
    let ngroup = group.len();
    let agg_types = &output_types[ngroup..];

    let states: Vec<Result<GroupedAggState>> = if config.unified_sched {
        // Morsel path: one partial state per block range, merged in
        // (partition, range) order — same deterministic group order as the
        // legacy per-partition merge.
        let morsels = build_morsels(table, config);
        let mut slots: Vec<Option<Result<GroupedAggState>>> =
            (0..morsels.len()).map(|_| None).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .zip(&morsels)
            .map(|(slot, &(p, range))| {
                let table = Arc::clone(table);
                Box::new(move || {
                    let ctx = ExecContext::for_morsel(config, table, p, Some(range));
                    *slot = Some(partition_state(input, group, aggs, agg_types, &ctx));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_on_scheduler(tasks)?;
        slots.into_iter().map(|s| s.expect("every morsel task ran")).collect()
    } else {
        let workers = config.parallelism.min(partitions).max(1);
        let mut slots: Vec<Option<Result<GroupedAggState>>> =
            (0..partitions).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let table = Arc::clone(table);
                handles.push(scope.spawn(move || -> Vec<(usize, Result<GroupedAggState>)> {
                    let mut out = Vec::new();
                    let mut p = w;
                    while p < partitions {
                        let ctx = ExecContext::for_partition(config, Arc::clone(&table), p);
                        out.push((p, partition_state(input, group, aggs, agg_types, &ctx)));
                        p += workers;
                    }
                    out
                }));
            }
            for h in handles {
                let results = h
                    .join()
                    .map_err(|_| EngineError::Execution("parallel worker panicked".into()))?;
                for (p, r) in results {
                    slots[p] = Some(r);
                }
            }
            Ok::<(), EngineError>(())
        })?;
        slots.into_iter().map(|s| s.expect("every partition was assigned to a worker")).collect()
    };

    let mut merged = GroupedAggState::new(aggs, agg_types);
    for state in states {
        merged.merge(state?)?;
    }
    let result = merged.finalize(ngroup, output_types)?;

    let mut out = Vec::new();
    let (rows, step) = (result.num_rows(), config.vector_size.max(1));
    let mut off = 0;
    while off < rows {
        let end = (off + step).min(rows);
        out.push(result.slice(off, end));
        off = end;
    }
    Ok(out)
}

/// One worker's partial aggregate over one partition.
fn partition_state(
    input: &LogicalPlan,
    group: &[Expr],
    aggs: &[AggSpec],
    agg_types: &[DataType],
    ctx: &ExecContext,
) -> Result<GroupedAggState> {
    let mut op = build_operator(input, ctx)?;
    op.open()?;
    let mut state = GroupedAggState::new(aggs, agg_types);
    while let Some(batch) = op.next()? {
        if batch.num_rows() > 0 {
            state.absorb_batch(&batch, group, aggs)?;
        }
    }
    op.close();
    Ok(state)
}

fn execute_partitioned(
    plan: &LogicalPlan,
    table: &Arc<Table>,
    config: &EngineConfig,
) -> Result<Vec<Batch>> {
    if config.unified_sched {
        return execute_morsels(plan, table, config);
    }
    let partitions = table.partition_count();
    let workers = config.parallelism.min(partitions).max(1);
    let mut slots: Vec<Result<Vec<Batch>>> = (0..partitions).map(|_| Ok(Vec::new())).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let table = Arc::clone(table);
            handles.push(scope.spawn(move || -> Vec<(usize, Result<Vec<Batch>>)> {
                let mut out = Vec::new();
                let mut p = w;
                while p < partitions {
                    let ctx = ExecContext::for_partition(config, Arc::clone(&table), p);
                    let result = build_operator(plan, &ctx).and_then(drain);
                    out.push((p, result));
                    p += workers;
                }
                out
            }));
        }
        for h in handles {
            let results =
                h.join().map_err(|_| EngineError::Execution("parallel worker panicked".into()));
            match results {
                Ok(results) => {
                    for (p, r) in results {
                        slots[p] = r;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })?;

    // Gather in partition order for deterministic output.
    let mut out = Vec::new();
    for slot in slots {
        out.extend(slot?);
    }
    Ok(out)
}

/// Unified-scheduler partitioned execution: each morsel drains a private
/// plan copy restricted to its block range; results gather in (partition,
/// range) order, matching the legacy path's partition-order output.
fn execute_morsels(
    plan: &LogicalPlan,
    table: &Arc<Table>,
    config: &EngineConfig,
) -> Result<Vec<Batch>> {
    let morsels = build_morsels(table, config);
    let mut slots: Vec<Option<Result<Vec<Batch>>>> = (0..morsels.len()).map(|_| None).collect();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
        .iter_mut()
        .zip(&morsels)
        .map(|(slot, &(p, range))| {
            let table = Arc::clone(table);
            Box::new(move || {
                let ctx = ExecContext::for_morsel(config, table, p, Some(range));
                *slot = Some(build_operator(plan, &ctx).and_then(drain));
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_on_scheduler(tasks)?;

    let mut out = Vec::new();
    for slot in slots {
        out.extend(slot.expect("every morsel task ran")?);
    }
    Ok(out)
}

/// Pick the table to partition: the largest multi-partition scanned table
/// for which partitioned execution is provably safe.
fn choose_partition_table(plan: &LogicalPlan) -> Option<Arc<Table>> {
    let mut tables: Vec<Arc<Table>> = Vec::new();
    collect_scan_tables(plan, &mut tables);
    // Deduplicate by identity, remembering scan counts.
    let mut uniq: Vec<(Arc<Table>, usize)> = Vec::new();
    for t in tables {
        match uniq.iter_mut().find(|(u, _)| Arc::ptr_eq(u, &t)) {
            Some((_, n)) => *n += 1,
            None => uniq.push((t, 1)),
        }
    }
    uniq.sort_by_key(|(t, _)| std::cmp::Reverse(t.row_count()));
    for (table, scans) in uniq {
        if scans == 1 && table.partition_count() > 1 && is_safe(plan, &table) {
            return Some(table);
        }
    }
    None
}

/// Append every base table scanned by `plan` to `out` (one entry per scan,
/// so a table referenced twice appears twice). Public for the shard
/// planner, which applies the same scanned-exactly-once rule at the
/// shard level that [`execute`] applies at the partition level.
pub fn collect_scan_tables(plan: &LogicalPlan, out: &mut Vec<Arc<Table>>) {
    match plan {
        LogicalPlan::Scan { table, .. } => out.push(Arc::clone(table)),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => collect_scan_tables(input, out),
        LogicalPlan::CrossJoin { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            collect_scan_tables(left, out);
            collect_scan_tables(right, out);
        }
        LogicalPlan::Values { .. } => {}
    }
}

/// Is partition-parallel execution over `table` result-preserving?
fn is_safe(plan: &LogicalPlan, table: &Arc<Table>) -> bool {
    match plan {
        // A nested LIMIT would multiply across partitions.
        LogicalPlan::Limit { .. } => false,
        LogicalPlan::Aggregate { input, group, .. } => {
            let grouped_on_key = group.iter().any(|g| {
                if let Expr::Column(i) = g {
                    matches!(
                        column_source(input, *i),
                        Some((src, col)) if Arc::ptr_eq(&src, table)
                            && src.is_unique_column(col)
                    )
                } else {
                    false
                }
            });
            grouped_on_key && is_safe(input, table)
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. } => is_safe(input, table),
        LogicalPlan::CrossJoin { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            is_safe(left, table) && is_safe(right, table)
        }
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => true,
    }
}

/// Trace an output column of `plan` back to a base table column, if the
/// lineage is a pure passthrough. Public for the shard planner, which
/// needs the same lineage argument to decide whether a group key or an
/// equality predicate pins the sharding column.
pub fn column_source(plan: &LogicalPlan, idx: usize) -> Option<(Arc<Table>, usize)> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some((Arc::clone(table), idx)),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => column_source(input, idx),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(idx)? {
            Expr::Column(i) => column_source(input, *i),
            _ => None,
        },
        LogicalPlan::CrossJoin { left, right, .. } | LogicalPlan::HashJoin { left, right, .. } => {
            let nleft = left.schema().len();
            if idx < nleft {
                column_source(left, idx)
            } else {
                column_source(right, idx - nleft)
            }
        }
        LogicalPlan::Aggregate { input, group, .. } => match group.get(idx)? {
            Expr::Column(i) => column_source(input, *i),
            _ => None,
        },
        LogicalPlan::Values { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::column::ColumnVector;
    use crate::plan::binder::Binder;
    use crate::plan::optimizer::Optimizer;
    use crate::sql::{parse_statement, Statement};
    use crate::storage::{ColumnDef, Schema};
    use crate::types::{DataType, Value};

    fn setup(config: &EngineConfig) -> Catalog {
        let cat = Catalog::new();
        let facts = cat
            .create_table(
                "facts",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Float),
                ])
                .unwrap(),
                config,
            )
            .unwrap();
        let n = 50i64;
        facts
            .append(vec![
                ColumnVector::Int((0..n).collect()),
                ColumnVector::Float((0..n).map(|i| i as f64 * 0.5).collect()),
            ])
            .unwrap();
        facts.declare_unique("id").unwrap();
        cat
    }

    fn run(sql: &str, config: &EngineConfig, cat: &Catalog) -> Vec<Vec<Value>> {
        let binder = Binder::new(cat);
        let Statement::Select(s) = parse_statement(sql).unwrap() else { panic!() };
        let plan = Optimizer::new(config.clone()).optimize(binder.bind_select(&s).unwrap());
        let batches = execute(&plan, config).unwrap();
        let mut rows = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                rows.push(b.row(r));
            }
        }
        rows
    }

    #[test]
    fn parallel_and_serial_agree_on_grouped_aggregate() {
        let par =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let ser =
            EngineConfig { vector_size: 8, partitions: 1, parallelism: 1, ..Default::default() };
        let sql = "SELECT id, SUM(v) AS s FROM facts GROUP BY id ORDER BY id";
        let a = run(sql, &par, &setup(&par));
        let b = run(sql, &ser, &setup(&ser));
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn order_by_is_applied_after_gather() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let rows = run("SELECT id FROM facts ORDER BY id DESC LIMIT 3", &cfg, &setup(&cfg));
        assert_eq!(rows, vec![vec![Value::Int(49)], vec![Value::Int(48)], vec![Value::Int(47)]]);
    }

    #[test]
    fn non_unique_group_key_takes_partial_aggregate_path_and_stays_correct() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let cat = setup(&cfg);
        // Group key id % 5 spans partitions: the gather path is unsafe, so
        // this runs through merged partial aggregates.
        let rows = run(
            "SELECT id % 5 AS g, COUNT(*) AS n FROM facts GROUP BY id % 5 ORDER BY 1",
            &cfg,
            &cat,
        );
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[1] == Value::Int(10)));
    }

    #[test]
    fn partial_aggregates_match_serial_across_agg_functions() {
        let par =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let ser =
            EngineConfig { vector_size: 8, partitions: 1, parallelism: 1, ..Default::default() };
        // v = 0.5 * id is exact in binary, so even SUM/AVG agree bitwise.
        let sql = "SELECT id % 3 AS g, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, \
                   MAX(v) AS hi, AVG(v) AS m FROM facts GROUP BY id % 3 ORDER BY 1";
        let a = run(sql, &par, &setup(&par));
        let b = run(sql, &ser, &setup(&ser));
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn global_aggregate_takes_partial_path() {
        let par =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let ser =
            EngineConfig { vector_size: 8, partitions: 1, parallelism: 1, ..Default::default() };
        let sql = "SELECT COUNT(*) AS n, SUM(v) AS s FROM facts";
        let a = run(sql, &par, &setup(&par));
        let b = run(sql, &ser, &setup(&ser));
        assert_eq!(a, b);
        assert_eq!(a[0][0], Value::Int(50));
    }

    #[test]
    fn rowwise_ops_config_stays_correct() {
        let cfg = EngineConfig {
            vector_size: 8,
            partitions: 4,
            parallelism: 4,
            rowwise_ops: true,
            ..Default::default()
        };
        let cat = setup(&cfg);
        let rows = run(
            "SELECT id % 5 AS g, COUNT(*) AS n FROM facts GROUP BY id % 5 ORDER BY 1",
            &cfg,
            &cat,
        );
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[1] == Value::Int(10)));
        let rows =
            run("SELECT a.id FROM facts a, facts b WHERE a.id = b.id ORDER BY 1", &cfg, &cat);
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn choose_rejects_tables_scanned_twice() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let cat = setup(&cfg);
        // Self join: the table appears twice, so no partition target exists;
        // results must still be correct (serial fallback).
        let rows = run(
            "SELECT a.id FROM facts a, facts b WHERE a.id = b.id AND a.id < 5 ORDER BY 1",
            &cfg,
            &cat,
        );
        assert_eq!(rows.len(), 5);
    }

    // Regression test for merge-order determinism: partial aggregates over
    // non-dyadic floats (0.1 steps do not sum associatively in binary) must
    // fold in partition/morsel index order, so repeated runs of the same
    // query produce bit-identical floats — on both the unified-scheduler
    // morsel path and the legacy thread-scope path. The sharded facade
    // (crates/shard) extends the same guarantee to shard index order.
    #[test]
    fn repeated_partial_aggregate_runs_are_bit_identical() {
        for unified in [true, false] {
            let cfg = EngineConfig {
                vector_size: 8,
                partitions: 4,
                parallelism: 4,
                unified_sched: unified,
                ..Default::default()
            };
            let cat = Catalog::new();
            let facts = cat
                .create_table(
                    "facts",
                    Schema::new(vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("v", DataType::Float),
                    ])
                    .unwrap(),
                    &cfg,
                )
                .unwrap();
            let n = 200i64;
            facts
                .append(vec![
                    ColumnVector::Int((0..n).collect()),
                    ColumnVector::Float((0..n).map(|i| i as f64 * 0.1).collect()),
                ])
                .unwrap();
            facts.declare_unique("id").unwrap();
            let sql = "SELECT id % 7 AS g, SUM(v) AS s, AVG(v) AS m FROM facts \
                       GROUP BY id % 7 ORDER BY 1";
            // Compare raw float bit patterns, not `==` (which would let
            // -0.0 == 0.0 slip through the bit-identity claim).
            let bits = |rows: &Vec<Vec<Value>>| -> Vec<Vec<u64>> {
                rows.iter()
                    .map(|r| {
                        r.iter()
                            .map(|v| match v {
                                Value::Float(f) => f.to_bits(),
                                Value::Int(i) => *i as u64,
                                other => panic!("unexpected value {other:?}"),
                            })
                            .collect()
                    })
                    .collect()
            };
            let first = bits(&run(sql, &cfg, &cat));
            for _ in 0..11 {
                let again = bits(&run(sql, &cfg, &cat));
                assert_eq!(
                    first, again,
                    "partial-aggregate merge must be index-ordered (unified={unified})"
                );
            }
        }
    }

    #[test]
    fn lineage_through_projection() {
        let cfg =
            EngineConfig { vector_size: 8, partitions: 4, parallelism: 4, ..Default::default() };
        let cat = setup(&cfg);
        // id flows through a subquery projection into the GROUP BY: still
        // parallel-safe, and correct either way.
        let rows = run(
            "SELECT key, SUM(val) FROM \
             (SELECT id AS key, v * 2 AS val FROM facts) AS q \
             GROUP BY key ORDER BY key LIMIT 2",
            &cfg,
            &cat,
        );
        assert_eq!(rows[0], vec![Value::Int(0), Value::Float(0.0)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Float(1.0)]);
    }
}
