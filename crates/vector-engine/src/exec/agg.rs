//! Hash aggregation.

use crate::column::{Batch, ColumnVector};
use crate::error::{EngineError, Result};
use crate::exec::join::{row_key, KeyPart};
use crate::exec::physical::Operator;
use crate::expr::Expr;
use crate::plan::logical::{AggFunc, AggSpec};
use crate::types::{DataType, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Per-group accumulator.
#[derive(Clone, Debug)]
enum AggState {
    SumInt(i64),
    SumFloat(f64),
    Count(i64),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(spec: &AggSpec, result_type: DataType) -> AggState {
        match spec.func {
            AggFunc::Sum => {
                if result_type == DataType::Int {
                    AggState::SumInt(0)
                } else {
                    AggState::SumFloat(0.0)
                }
            }
            AggFunc::Count => AggState::Count(0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::SumInt(acc) => {
                *acc += value.expect("SUM has an argument").as_i64()?;
            }
            AggState::SumFloat(acc) => {
                *acc += value.expect("SUM has an argument").as_f64()?;
            }
            AggState::Avg { sum, count } => {
                *sum += value.expect("AVG has an argument").as_f64()?;
                *count += 1;
            }
            AggState::Min(cur) => {
                let v = value.expect("MIN has an argument");
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Less) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let v = value.expect("MAX has an argument");
                if cur.as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Greater) {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> Result<Value> {
        Ok(match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(v) => Value::Int(v),
            AggState::SumFloat(v) => Value::Float(v),
            // SQL's AVG over an empty group is NULL; in the NULL-free engine
            // the global empty case surfaces as 0.0 (documented).
            AggState::Avg { sum, count } => {
                Value::Float(if count == 0 { 0.0 } else { sum / count as f64 })
            }
            AggState::Min(v) => v.ok_or_else(|| {
                EngineError::Execution("MIN over empty input requires NULL support".into())
            })?,
            AggState::Max(v) => v.ok_or_else(|| {
                EngineError::Execution("MAX over empty input requires NULL support".into())
            })?,
        })
    }
}

/// Hash-based grouping aggregation. Consumes its whole input (the pipeline
/// breaker the paper calls out in Sec. 4.4), then emits `vector_size`
/// batches of group rows in first-seen order (deterministic results).
pub struct HashAggExec {
    input: Box<dyn Operator>,
    group: Vec<Expr>,
    aggs: Vec<AggSpec>,
    /// Output column types: group columns then aggregate columns.
    output_types: Vec<DataType>,
    vector_size: usize,
    /// Result after the build phase.
    result: Option<Batch>,
    offset: usize,
}

impl HashAggExec {
    pub fn new(
        input: Box<dyn Operator>,
        group: Vec<Expr>,
        aggs: Vec<AggSpec>,
        output_types: Vec<DataType>,
        vector_size: usize,
    ) -> HashAggExec {
        HashAggExec {
            input,
            group,
            aggs,
            output_types,
            vector_size: vector_size.max(1),
            result: None,
            offset: 0,
        }
    }

    fn compute(&mut self) -> Result<()> {
        let ngroup = self.group.len();
        let agg_types: Vec<DataType> = self.output_types[ngroup..].to_vec();

        // group key -> index into `groups`
        let mut index: HashMap<Vec<KeyPart>, usize> = HashMap::new();
        // first-seen group values + accumulator states
        let mut group_rows: Vec<Vec<Value>> = Vec::new();
        let mut states: Vec<Vec<AggState>> = Vec::new();

        while let Some(batch) = self.input.next()? {
            if batch.num_rows() == 0 {
                continue;
            }
            let key_cols: Result<Vec<ColumnVector>> =
                self.group.iter().map(|e| e.eval(&batch)).collect();
            let key_cols = key_cols?;
            let arg_cols: Result<Vec<Option<ColumnVector>>> = self
                .aggs
                .iter()
                .map(|s| s.arg.as_ref().map(|a| a.eval(&batch)).transpose())
                .collect();
            let arg_cols = arg_cols?;
            for row in 0..batch.num_rows() {
                let key = row_key(&key_cols, row);
                let gi = match index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        let gi = group_rows.len();
                        index.insert(key, gi);
                        group_rows.push(key_cols.iter().map(|c| c.value(row)).collect());
                        states.push(
                            self.aggs
                                .iter()
                                .zip(&agg_types)
                                .map(|(s, t)| AggState::new(s, *t))
                                .collect(),
                        );
                        gi
                    }
                };
                for (ai, state) in states[gi].iter_mut().enumerate() {
                    let arg = arg_cols[ai].as_ref().map(|c| c.value(row));
                    state.update(arg.as_ref())?;
                }
            }
        }

        // A global aggregate (no GROUP BY) emits exactly one row even for
        // empty input.
        if ngroup == 0 && group_rows.is_empty() {
            group_rows.push(Vec::new());
            states.push(
                self.aggs.iter().zip(&agg_types).map(|(s, t)| AggState::new(s, *t)).collect(),
            );
        }

        let mut cols: Vec<ColumnVector> =
            self.output_types.iter().map(|t| ColumnVector::empty(*t)).collect();
        for (gvals, gstates) in group_rows.into_iter().zip(states) {
            for (c, v) in cols.iter_mut().zip(gvals.iter()) {
                // Group values can be INT where the schema says FLOAT
                // (promotion); push handles the widening.
                c.push(v.clone().cast(c.data_type())?)?;
            }
            for (ai, state) in gstates.into_iter().enumerate() {
                let v = state.finalize()?;
                let col = &mut cols[ngroup + ai];
                col.push(v.cast(col.data_type())?)?;
            }
        }
        self.result = Some(Batch::new(cols));
        Ok(())
    }
}

impl Operator for HashAggExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.result.is_none() {
            self.compute()?;
        }
        let result = self.result.as_ref().expect("computed");
        if self.offset >= result.num_rows() {
            return Ok(None);
        }
        let end = (self.offset + self.vector_size).min(result.num_rows());
        let out = result.slice(self.offset, end);
        self.offset = end;
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.result = None;
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::physical::drain;
    use crate::exec::simple::ValuesExec;
    use crate::expr::BinaryOp;

    fn source(rows: Vec<(i64, f64)>) -> Box<dyn Operator> {
        let rows = rows.into_iter().map(|(a, b)| vec![Value::Int(a), Value::Float(b)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int, DataType::Float]))
    }

    fn collect_rows(batches: Vec<Batch>) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                out.push(b.row(r));
            }
        }
        out
    }

    #[test]
    fn grouped_sum_and_count() {
        let agg = HashAggExec::new(
            source(vec![(1, 1.0), (2, 2.0), (1, 3.0), (2, 4.0), (1, 5.0)]),
            vec![Expr::col(0)],
            vec![
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) },
                AggSpec { func: AggFunc::Count, arg: None },
            ],
            vec![DataType::Int, DataType::Float, DataType::Int],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows.len(), 2);
        // First-seen order: group 1 then group 2.
        assert_eq!(rows[0], vec![Value::Int(1), Value::Float(9.0), Value::Int(3)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Float(6.0), Value::Int(2)]);
    }

    #[test]
    fn min_max_avg() {
        let agg = HashAggExec::new(
            source(vec![(1, 4.0), (1, 2.0), (1, 6.0)]),
            vec![Expr::col(0)],
            vec![
                AggSpec { func: AggFunc::Min, arg: Some(Expr::col(1)) },
                AggSpec { func: AggFunc::Max, arg: Some(Expr::col(1)) },
                AggSpec { func: AggFunc::Avg, arg: Some(Expr::col(1)) },
            ],
            vec![DataType::Int, DataType::Float, DataType::Float, DataType::Float],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::Float(2.0), Value::Float(6.0), Value::Float(4.0)]
        );
    }

    #[test]
    fn integer_sum_stays_integer() {
        let agg = HashAggExec::new(
            source(vec![(1, 0.0), (1, 0.0)]),
            vec![],
            vec![AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(0)) }],
            vec![DataType::Int],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows[0], vec![Value::Int(2)]);
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_one_row() {
        let agg = HashAggExec::new(
            source(vec![]),
            vec![],
            vec![
                AggSpec { func: AggFunc::Count, arg: None },
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) },
            ],
            vec![DataType::Int, DataType::Float],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Float(0.0)]]);
    }

    #[test]
    fn min_over_empty_input_errors() {
        let agg = HashAggExec::new(
            source(vec![]),
            vec![],
            vec![AggSpec { func: AggFunc::Min, arg: Some(Expr::col(1)) }],
            vec![DataType::Float],
            1024,
        );
        assert!(drain(Box::new(agg)).is_err());
    }

    #[test]
    fn grouped_on_empty_input_emits_nothing() {
        let agg = HashAggExec::new(
            source(vec![]),
            vec![Expr::col(0)],
            vec![AggSpec { func: AggFunc::Count, arg: None }],
            vec![DataType::Int, DataType::Int],
            1024,
        );
        assert!(drain(Box::new(agg)).unwrap().is_empty());
    }

    #[test]
    fn computed_group_keys_and_batched_output() {
        // Group by id % 2 with tiny vector size to force multi-batch output.
        let agg = HashAggExec::new(
            source((0..10).map(|i| (i, i as f64)).collect()),
            vec![Expr::binary(BinaryOp::Mod, Expr::col(0), Expr::lit(Value::Int(2)))],
            vec![AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) }],
            vec![DataType::Int, DataType::Float],
            1,
        );
        let batches = drain(Box::new(agg)).unwrap();
        assert_eq!(batches.len(), 2);
        let rows = collect_rows(batches);
        assert_eq!(rows[0], vec![Value::Int(0), Value::Float(20.0)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Float(25.0)]);
    }
}
