//! Vectorized hash aggregation.
//!
//! Grouping runs through the shared columnar key pipeline
//! ([`crate::exec::hash`]): one hash vector per input batch, group lookup
//! against retained key columns, and a dense group id per row. Accumulation
//! is typed: each aggregate owns flat `Vec<i64>`/`Vec<f64>` slot arrays
//! indexed by group id, updated by batch kernels over the typed column
//! slices — no per-row `Value` materialization, no composite keys.
//!
//! [`GroupedAggState`] is the reusable core: [`HashAggExec`] drives it
//! serially, and the partition-parallel driver (`exec/parallel.rs`) builds
//! one state per partition and merges the typed partial aggregates in
//! partition order.

use crate::column::{Batch, ColumnVector};
use crate::error::{EngineError, Result};
use crate::exec::hash::{hash_key_columns, keys_equal, KeyTable};
use crate::exec::physical::Operator;
use crate::expr::Expr;
use crate::plan::logical::{AggFunc, AggSpec};
use crate::types::{DataType, Value};
use std::cmp::Ordering;

/// Largest / smallest f64 under `f64::total_cmp` — the absorbing identities
/// for typed MIN / MAX slots. Every real group receives at least one row
/// (the engine is NULL-free), so sentinels never leak into results.
const TOTAL_ORD_MAX: f64 = f64::from_bits(0x7fff_ffff_ffff_ffff);
const TOTAL_ORD_MIN: f64 = f64::from_bits(0xffff_ffff_ffff_ffff);

/// Typed per-aggregate slot arrays, indexed by dense group id.
#[derive(Clone, Debug)]
enum Accumulator {
    SumInt(Vec<i64>),
    SumFloat(Vec<f64>),
    Count(Vec<i64>),
    Avg {
        sum: Vec<f64>,
        count: Vec<i64>,
    },
    MinInt(Vec<i64>),
    MaxInt(Vec<i64>),
    MinFloat(Vec<f64>),
    MaxFloat(Vec<f64>),
    /// MIN/MAX over non-numeric columns — one `Value` per *group* (not per
    /// row), ordered by [`Value::total_cmp`].
    MinVal(Vec<Option<Value>>),
    MaxVal(Vec<Option<Value>>),
}

impl Accumulator {
    fn new(spec: &AggSpec, result_type: DataType) -> Accumulator {
        match spec.func {
            AggFunc::Sum => {
                if result_type == DataType::Int {
                    Accumulator::SumInt(Vec::new())
                } else {
                    Accumulator::SumFloat(Vec::new())
                }
            }
            AggFunc::Count => Accumulator::Count(Vec::new()),
            AggFunc::Avg => Accumulator::Avg { sum: Vec::new(), count: Vec::new() },
            AggFunc::Min => match result_type {
                DataType::Int => Accumulator::MinInt(Vec::new()),
                DataType::Float => Accumulator::MinFloat(Vec::new()),
                _ => Accumulator::MinVal(Vec::new()),
            },
            AggFunc::Max => match result_type {
                DataType::Int => Accumulator::MaxInt(Vec::new()),
                DataType::Float => Accumulator::MaxFloat(Vec::new()),
                _ => Accumulator::MaxVal(Vec::new()),
            },
        }
    }

    /// Append the identity slot of a newly discovered group.
    fn push_group(&mut self) {
        match self {
            Accumulator::SumInt(v) => v.push(0),
            Accumulator::SumFloat(v) => v.push(0.0),
            Accumulator::Count(v) => v.push(0),
            Accumulator::Avg { sum, count } => {
                sum.push(0.0);
                count.push(0);
            }
            Accumulator::MinInt(v) => v.push(i64::MAX),
            Accumulator::MaxInt(v) => v.push(i64::MIN),
            Accumulator::MinFloat(v) => v.push(TOTAL_ORD_MAX),
            Accumulator::MaxFloat(v) => v.push(TOTAL_ORD_MIN),
            Accumulator::MinVal(v) | Accumulator::MaxVal(v) => v.push(None),
        }
    }

    /// Fold one batch into the slots: `gids[i]` is the group of row `i` of
    /// `arg`. Each arm is a tight loop over the typed column slice.
    fn update_batch(&mut self, gids: &[u32], arg: Option<&ColumnVector>) -> Result<()> {
        match self {
            Accumulator::Count(n) => {
                for &g in gids {
                    n[g as usize] += 1;
                }
            }
            Accumulator::SumInt(acc) => match arg.expect("SUM has an argument") {
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        acc[g as usize] += x;
                    }
                }
                ColumnVector::Float(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        acc[g as usize] += x as i64;
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        acc[g as usize] += other.value(i).as_i64()?;
                    }
                }
            },
            Accumulator::SumFloat(acc) => match arg.expect("SUM has an argument") {
                ColumnVector::Float(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        acc[g as usize] += x;
                    }
                }
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        acc[g as usize] += x as f64;
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        acc[g as usize] += other.value(i).as_f64()?;
                    }
                }
            },
            Accumulator::Avg { sum, count } => match arg.expect("AVG has an argument") {
                ColumnVector::Float(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        sum[g as usize] += x;
                        count[g as usize] += 1;
                    }
                }
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        sum[g as usize] += x as f64;
                        count[g as usize] += 1;
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        sum[g as usize] += other.value(i).as_f64()?;
                        count[g as usize] += 1;
                    }
                }
            },
            Accumulator::MinInt(acc) => match arg.expect("MIN has an argument") {
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        let slot = &mut acc[g as usize];
                        *slot = (*slot).min(x);
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        let x = other.value(i).as_i64()?;
                        let slot = &mut acc[g as usize];
                        *slot = (*slot).min(x);
                    }
                }
            },
            Accumulator::MaxInt(acc) => match arg.expect("MAX has an argument") {
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        let slot = &mut acc[g as usize];
                        *slot = (*slot).max(x);
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        let x = other.value(i).as_i64()?;
                        let slot = &mut acc[g as usize];
                        *slot = (*slot).max(x);
                    }
                }
            },
            Accumulator::MinFloat(acc) => match arg.expect("MIN has an argument") {
                ColumnVector::Float(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        let slot = &mut acc[g as usize];
                        if x.total_cmp(slot) == Ordering::Less {
                            *slot = x;
                        }
                    }
                }
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        let slot = &mut acc[g as usize];
                        if (x as f64).total_cmp(slot) == Ordering::Less {
                            *slot = x as f64;
                        }
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        let x = other.value(i).as_f64()?;
                        let slot = &mut acc[g as usize];
                        if x.total_cmp(slot) == Ordering::Less {
                            *slot = x;
                        }
                    }
                }
            },
            Accumulator::MaxFloat(acc) => match arg.expect("MAX has an argument") {
                ColumnVector::Float(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        let slot = &mut acc[g as usize];
                        if x.total_cmp(slot) == Ordering::Greater {
                            *slot = x;
                        }
                    }
                }
                ColumnVector::Int(v) => {
                    for (&g, &x) in gids.iter().zip(v) {
                        let slot = &mut acc[g as usize];
                        if (x as f64).total_cmp(slot) == Ordering::Greater {
                            *slot = x as f64;
                        }
                    }
                }
                other => {
                    for (i, &g) in gids.iter().enumerate() {
                        let x = other.value(i).as_f64()?;
                        let slot = &mut acc[g as usize];
                        if x.total_cmp(slot) == Ordering::Greater {
                            *slot = x;
                        }
                    }
                }
            },
            Accumulator::MinVal(acc) => {
                let col = arg.expect("MIN has an argument");
                for (i, &g) in gids.iter().enumerate() {
                    let v = col.value(i);
                    let slot = &mut acc[g as usize];
                    if slot.as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Less) {
                        *slot = Some(v);
                    }
                }
            }
            Accumulator::MaxVal(acc) => {
                let col = arg.expect("MAX has an argument");
                for (i, &g) in gids.iter().enumerate() {
                    let v = col.value(i);
                    let slot = &mut acc[g as usize];
                    if slot.as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Greater) {
                        *slot = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge slot `src` of a partial aggregate into slot `dst` of `self`.
    fn merge_slot(&mut self, dst: usize, other: &Accumulator, src: usize) {
        match (self, other) {
            (Accumulator::SumInt(a), Accumulator::SumInt(b)) => a[dst] += b[src],
            (Accumulator::SumFloat(a), Accumulator::SumFloat(b)) => a[dst] += b[src],
            (Accumulator::Count(a), Accumulator::Count(b)) => a[dst] += b[src],
            (Accumulator::Avg { sum: s, count: c }, Accumulator::Avg { sum: os, count: oc }) => {
                s[dst] += os[src];
                c[dst] += oc[src];
            }
            (Accumulator::MinInt(a), Accumulator::MinInt(b)) => a[dst] = a[dst].min(b[src]),
            (Accumulator::MaxInt(a), Accumulator::MaxInt(b)) => a[dst] = a[dst].max(b[src]),
            (Accumulator::MinFloat(a), Accumulator::MinFloat(b)) => {
                if b[src].total_cmp(&a[dst]) == Ordering::Less {
                    a[dst] = b[src];
                }
            }
            (Accumulator::MaxFloat(a), Accumulator::MaxFloat(b)) => {
                if b[src].total_cmp(&a[dst]) == Ordering::Greater {
                    a[dst] = b[src];
                }
            }
            (Accumulator::MinVal(a), Accumulator::MinVal(b)) => {
                if let Some(v) = &b[src] {
                    if a[dst].as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Less) {
                        a[dst] = Some(v.clone());
                    }
                }
            }
            (Accumulator::MaxVal(a), Accumulator::MaxVal(b)) => {
                if let Some(v) = &b[src] {
                    if a[dst].as_ref().is_none_or(|c| v.total_cmp(c) == Ordering::Greater) {
                        a[dst] = Some(v.clone());
                    }
                }
            }
            _ => unreachable!("partial aggregates built from one plan share variants"),
        }
    }

    /// Turn the slot arrays into the output column. `empty_global` marks the
    /// one synthesized group of a global aggregate over empty input, where
    /// MIN/MAX have no value to produce.
    fn finalize_column(self, empty_global: bool) -> Result<ColumnVector> {
        let no_input = |func: &str| {
            EngineError::Execution(format!("{func} over empty input requires NULL support"))
        };
        Ok(match self {
            Accumulator::SumInt(v) | Accumulator::Count(v) => ColumnVector::Int(v),
            Accumulator::SumFloat(v) => ColumnVector::Float(v),
            // SQL's AVG over an empty group is NULL; in the NULL-free engine
            // the global empty case surfaces as 0.0 (documented).
            Accumulator::Avg { sum, count } => ColumnVector::Float(
                sum.iter()
                    .zip(&count)
                    .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect(),
            ),
            Accumulator::MinInt(v) => {
                if empty_global {
                    return Err(no_input("MIN"));
                }
                ColumnVector::Int(v)
            }
            Accumulator::MaxInt(v) => {
                if empty_global {
                    return Err(no_input("MAX"));
                }
                ColumnVector::Int(v)
            }
            Accumulator::MinFloat(v) => {
                if empty_global {
                    return Err(no_input("MIN"));
                }
                ColumnVector::Float(v)
            }
            Accumulator::MaxFloat(v) => {
                if empty_global {
                    return Err(no_input("MAX"));
                }
                ColumnVector::Float(v)
            }
            Accumulator::MinVal(v) => {
                let mut out: Option<ColumnVector> = None;
                for slot in v {
                    let val = slot.ok_or_else(|| no_input("MIN"))?;
                    let col = out.get_or_insert_with(|| ColumnVector::empty(val.data_type()));
                    col.push(val)?;
                }
                // Zero groups: the declared-type cast downstream fixes the
                // placeholder type of the empty column.
                out.unwrap_or_else(|| ColumnVector::empty(DataType::Str))
            }
            Accumulator::MaxVal(v) => {
                let mut out: Option<ColumnVector> = None;
                for slot in v {
                    let val = slot.ok_or_else(|| no_input("MAX"))?;
                    let col = out.get_or_insert_with(|| ColumnVector::empty(val.data_type()));
                    col.push(val)?;
                }
                out.unwrap_or_else(|| ColumnVector::empty(DataType::Str))
            }
        })
    }
}

/// The vectorized grouping core: retained typed group-key columns, a
/// [`KeyTable`] mapping key hashes to dense group ids, and one
/// [`Accumulator`] per aggregate. Groups are numbered in first-seen order,
/// which keeps results deterministic and lets partial aggregates merge in
/// partition order.
pub struct GroupedAggState {
    /// Evaluated group-key columns of every distinct group, in first-seen
    /// order. `None` until the first batch fixes the key column types.
    group_cols: Option<Vec<ColumnVector>>,
    table: KeyTable,
    accs: Vec<Accumulator>,
    /// Reused per-batch scratch: row hashes and dense group ids.
    hashes: Vec<u64>,
    gids: Vec<u32>,
}

impl GroupedAggState {
    pub fn new(aggs: &[AggSpec], agg_types: &[DataType]) -> GroupedAggState {
        GroupedAggState {
            group_cols: None,
            table: KeyTable::with_capacity(0),
            accs: aggs.iter().zip(agg_types).map(|(s, t)| Accumulator::new(s, *t)).collect(),
            hashes: Vec::new(),
            gids: Vec::new(),
        }
    }

    pub fn num_groups(&self) -> usize {
        self.table.len()
    }

    /// Evaluate the group and aggregate expressions over `batch` and fold
    /// the rows in.
    pub fn absorb_batch(&mut self, batch: &Batch, group: &[Expr], aggs: &[AggSpec]) -> Result<()> {
        let key_cols: Result<Vec<ColumnVector>> = group.iter().map(|e| e.eval(batch)).collect();
        let arg_cols: Result<Vec<Option<ColumnVector>>> =
            aggs.iter().map(|s| s.arg.as_ref().map(|a| a.eval(batch)).transpose()).collect();
        self.absorb(&key_cols?, &arg_cols?, batch.num_rows())
    }

    /// Fold `rows` rows of evaluated key and argument columns in: assign a
    /// dense group id per row (creating groups on first sight), then run
    /// each accumulator's batch kernel.
    pub fn absorb(
        &mut self,
        key_cols: &[ColumnVector],
        arg_cols: &[Option<ColumnVector>],
        rows: usize,
    ) -> Result<()> {
        if rows == 0 {
            return Ok(());
        }
        hash_key_columns(key_cols, rows, &mut self.hashes);
        let group_cols = self.group_cols.get_or_insert_with(|| {
            key_cols.iter().map(|c| ColumnVector::empty(c.data_type())).collect()
        });
        self.gids.clear();
        self.gids.reserve(rows);
        for (row, &h) in self.hashes.iter().enumerate() {
            let mut gid = None;
            for cand in self.table.candidates(h) {
                if keys_equal(group_cols, cand, key_cols, row) {
                    gid = Some(cand as u32);
                    break;
                }
            }
            let gid = match gid {
                Some(g) => g,
                None => {
                    let g = self.table.len() as u32;
                    self.table.insert(h);
                    for (gc, kc) in group_cols.iter_mut().zip(key_cols) {
                        gc.push_from(kc, row);
                    }
                    for acc in &mut self.accs {
                        acc.push_group();
                    }
                    g
                }
            };
            self.gids.push(gid);
        }
        for (acc, arg) in self.accs.iter_mut().zip(arg_cols) {
            acc.update_batch(&self.gids, arg.as_ref())?;
        }
        Ok(())
    }

    /// Merge a partial aggregate (same plan, disjoint input rows) into
    /// `self`. Unknown groups are appended in `other`'s first-seen order, so
    /// merging partials in partition order reproduces the serial group
    /// order of a partition-ordered scan.
    pub fn merge(&mut self, other: GroupedAggState) -> Result<()> {
        let Some(other_cols) = &other.group_cols else {
            return Ok(());
        };
        let groups = other.num_groups();
        let mut hashes = Vec::new();
        hash_key_columns(other_cols, groups, &mut hashes);
        let group_cols = self.group_cols.get_or_insert_with(|| {
            other_cols.iter().map(|c| ColumnVector::empty(c.data_type())).collect()
        });
        for (src, &h) in hashes.iter().enumerate() {
            let mut gid = None;
            for cand in self.table.candidates(h) {
                if keys_equal(group_cols, cand, other_cols, src) {
                    gid = Some(cand);
                    break;
                }
            }
            let dst = match gid {
                Some(g) => g,
                None => {
                    let g = self.table.len();
                    self.table.insert(h);
                    for (gc, oc) in group_cols.iter_mut().zip(other_cols) {
                        gc.push_from(oc, src);
                    }
                    for acc in &mut self.accs {
                        acc.push_group();
                    }
                    g
                }
            };
            for (acc, oacc) in self.accs.iter_mut().zip(&other.accs) {
                acc.merge_slot(dst, oacc, src);
            }
        }
        Ok(())
    }

    /// Produce the result batch: group columns then aggregate columns, cast
    /// to the declared output types. `ngroup` is the number of group
    /// columns; a global aggregate (`ngroup == 0`) emits exactly one row
    /// even for empty input.
    pub fn finalize(mut self, ngroup: usize, output_types: &[DataType]) -> Result<Batch> {
        let empty_global = ngroup == 0 && self.num_groups() == 0;
        if empty_global {
            for acc in &mut self.accs {
                acc.push_group();
            }
        }
        let mut cols: Vec<ColumnVector> = Vec::with_capacity(output_types.len());
        let group_cols = self.group_cols.take().unwrap_or_default();
        for (i, gc) in group_cols.into_iter().enumerate() {
            // Group values can be INT where the schema says FLOAT
            // (promotion); cast handles the widening.
            cols.push(gc.cast(output_types[i])?);
        }
        // No input batches at all: emit the typed empty columns.
        while cols.len() < ngroup {
            cols.push(ColumnVector::empty(output_types[cols.len()]));
        }
        for (i, acc) in self.accs.into_iter().enumerate() {
            let col = acc.finalize_column(empty_global)?;
            cols.push(col.cast(output_types[ngroup + i])?);
        }
        Ok(Batch::new(cols))
    }
}

/// Hash-based grouping aggregation. Consumes its whole input (the pipeline
/// breaker the paper calls out in Sec. 4.4), then emits `vector_size`
/// batches of group rows in first-seen order (deterministic results).
pub struct HashAggExec {
    input: Box<dyn Operator>,
    group: Vec<Expr>,
    aggs: Vec<AggSpec>,
    /// Output column types: group columns then aggregate columns.
    output_types: Vec<DataType>,
    vector_size: usize,
    /// Result after the build phase.
    result: Option<Batch>,
    offset: usize,
}

impl HashAggExec {
    pub fn new(
        input: Box<dyn Operator>,
        group: Vec<Expr>,
        aggs: Vec<AggSpec>,
        output_types: Vec<DataType>,
        vector_size: usize,
    ) -> HashAggExec {
        HashAggExec {
            input,
            group,
            aggs,
            output_types,
            vector_size: vector_size.max(1),
            result: None,
            offset: 0,
        }
    }

    fn compute(&mut self) -> Result<()> {
        let ngroup = self.group.len();
        let agg_types = &self.output_types[ngroup..];
        let mut state = GroupedAggState::new(&self.aggs, agg_types);
        while let Some(batch) = self.input.next()? {
            if batch.num_rows() == 0 {
                continue;
            }
            state.absorb_batch(&batch, &self.group, &self.aggs)?;
        }
        self.result = Some(state.finalize(ngroup, &self.output_types)?);
        Ok(())
    }
}

impl Operator for HashAggExec {
    fn open(&mut self) -> Result<()> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.result.is_none() {
            self.compute()?;
        }
        let result = self.result.as_ref().expect("computed");
        if self.offset >= result.num_rows() {
            return Ok(None);
        }
        let end = (self.offset + self.vector_size).min(result.num_rows());
        let out = result.slice(self.offset, end);
        self.offset = end;
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.result = None;
        self.input.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::physical::drain;
    use crate::exec::simple::ValuesExec;
    use crate::expr::BinaryOp;

    fn source(rows: Vec<(i64, f64)>) -> Box<dyn Operator> {
        let rows = rows.into_iter().map(|(a, b)| vec![Value::Int(a), Value::Float(b)]).collect();
        Box::new(ValuesExec::new(rows, vec![DataType::Int, DataType::Float]))
    }

    fn collect_rows(batches: Vec<Batch>) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                out.push(b.row(r));
            }
        }
        out
    }

    #[test]
    fn grouped_sum_and_count() {
        let agg = HashAggExec::new(
            source(vec![(1, 1.0), (2, 2.0), (1, 3.0), (2, 4.0), (1, 5.0)]),
            vec![Expr::col(0)],
            vec![
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) },
                AggSpec { func: AggFunc::Count, arg: None },
            ],
            vec![DataType::Int, DataType::Float, DataType::Int],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows.len(), 2);
        // First-seen order: group 1 then group 2.
        assert_eq!(rows[0], vec![Value::Int(1), Value::Float(9.0), Value::Int(3)]);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Float(6.0), Value::Int(2)]);
    }

    #[test]
    fn min_max_avg() {
        let agg = HashAggExec::new(
            source(vec![(1, 4.0), (1, 2.0), (1, 6.0)]),
            vec![Expr::col(0)],
            vec![
                AggSpec { func: AggFunc::Min, arg: Some(Expr::col(1)) },
                AggSpec { func: AggFunc::Max, arg: Some(Expr::col(1)) },
                AggSpec { func: AggFunc::Avg, arg: Some(Expr::col(1)) },
            ],
            vec![DataType::Int, DataType::Float, DataType::Float, DataType::Float],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::Float(2.0), Value::Float(6.0), Value::Float(4.0)]
        );
    }

    #[test]
    fn integer_sum_stays_integer() {
        let agg = HashAggExec::new(
            source(vec![(1, 0.0), (1, 0.0)]),
            vec![],
            vec![AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(0)) }],
            vec![DataType::Int],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows[0], vec![Value::Int(2)]);
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_one_row() {
        let agg = HashAggExec::new(
            source(vec![]),
            vec![],
            vec![
                AggSpec { func: AggFunc::Count, arg: None },
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) },
            ],
            vec![DataType::Int, DataType::Float],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Float(0.0)]]);
    }

    #[test]
    fn min_over_empty_input_errors() {
        let agg = HashAggExec::new(
            source(vec![]),
            vec![],
            vec![AggSpec { func: AggFunc::Min, arg: Some(Expr::col(1)) }],
            vec![DataType::Float],
            1024,
        );
        assert!(drain(Box::new(agg)).is_err());
    }

    #[test]
    fn grouped_on_empty_input_emits_nothing() {
        let agg = HashAggExec::new(
            source(vec![]),
            vec![Expr::col(0)],
            vec![AggSpec { func: AggFunc::Count, arg: None }],
            vec![DataType::Int, DataType::Int],
            1024,
        );
        assert!(drain(Box::new(agg)).unwrap().is_empty());
    }

    #[test]
    fn computed_group_keys_and_batched_output() {
        // Group by id % 2 with tiny vector size to force multi-batch output.
        let agg = HashAggExec::new(
            source((0..10).map(|i| (i, i as f64)).collect()),
            vec![Expr::binary(BinaryOp::Mod, Expr::col(0), Expr::lit(Value::Int(2)))],
            vec![AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) }],
            vec![DataType::Int, DataType::Float],
            1,
        );
        let batches = drain(Box::new(agg)).unwrap();
        assert_eq!(batches.len(), 2);
        let rows = collect_rows(batches);
        assert_eq!(rows[0], vec![Value::Int(0), Value::Float(20.0)]);
        assert_eq!(rows[1], vec![Value::Int(1), Value::Float(25.0)]);
    }

    #[test]
    fn string_group_keys_and_min_max() {
        let rows: Vec<Vec<Value>> = [("b", 2), ("a", 5), ("b", 1), ("a", 9)]
            .iter()
            .map(|(s, n)| vec![Value::Str((*s).into()), Value::Int(*n)])
            .collect();
        let agg = HashAggExec::new(
            Box::new(ValuesExec::new(rows, vec![DataType::Str, DataType::Int])),
            vec![Expr::col(0)],
            vec![
                AggSpec { func: AggFunc::Min, arg: Some(Expr::col(0)) },
                AggSpec { func: AggFunc::Max, arg: Some(Expr::col(1)) },
            ],
            vec![DataType::Str, DataType::Str, DataType::Int],
            1024,
        );
        let rows = collect_rows(drain(Box::new(agg)).unwrap());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Str("b".into()), Value::Str("b".into()), Value::Int(2)]);
        assert_eq!(rows[1], vec![Value::Str("a".into()), Value::Str("a".into()), Value::Int(9)]);
    }

    #[test]
    fn partial_aggregates_merge_in_partition_order() {
        let specs = vec![
            AggSpec { func: AggFunc::Sum, arg: Some(Expr::col(1)) },
            AggSpec { func: AggFunc::Count, arg: None },
            AggSpec { func: AggFunc::Min, arg: Some(Expr::col(1)) },
        ];
        let types = [DataType::Float, DataType::Int, DataType::Float];
        let group = vec![Expr::col(0)];
        let batch = |rows: Vec<(i64, f64)>| {
            Batch::new(vec![
                ColumnVector::Int(rows.iter().map(|r| r.0).collect()),
                ColumnVector::Float(rows.iter().map(|r| r.1).collect()),
            ])
        };
        let mut a = GroupedAggState::new(&specs, &types);
        a.absorb_batch(&batch(vec![(1, 1.0), (2, 2.0)]), &group, &specs).unwrap();
        let mut b = GroupedAggState::new(&specs, &types);
        b.absorb_batch(&batch(vec![(3, 3.0), (1, 4.0)]), &group, &specs).unwrap();
        a.merge(b).unwrap();
        let out = a
            .finalize(1, &[DataType::Int, DataType::Float, DataType::Int, DataType::Float])
            .unwrap();
        // Partition-order merge: groups 1, 2 from the first partial, then 3.
        assert_eq!(
            out.row(0),
            vec![Value::Int(1), Value::Float(5.0), Value::Int(2), Value::Float(1.0)]
        );
        assert_eq!(
            out.row(1),
            vec![Value::Int(2), Value::Float(2.0), Value::Int(1), Value::Float(2.0)]
        );
        assert_eq!(
            out.row(2),
            vec![Value::Int(3), Value::Float(3.0), Value::Int(1), Value::Float(3.0)]
        );
    }
}
