//! A columnar, vectorized, partition-parallel SQL engine — the substrate of
//! the reproduction, standing in for the paper's Actian Vector / x100 engine.
//!
//! Execution follows the x100 recipe the paper assumes (Sec. 5):
//! vector-at-a-time processing over typed column vectors of
//! [`config::EngineConfig::vector_size`] values (default 1024, the paper's
//! batch size), columnar block storage with small materialized aggregates
//! (min/max SMAs) enabling the block pruning that ML-To-SQL's filter
//! optimization relies on (Sec. 4.4), Volcano-style `open/next/close`
//! operators, and partition-based parallelism (default 12 partitions /
//! threads, the paper's configuration).
//!
//! The SQL surface covers everything the ML-To-SQL generator emits:
//! `SELECT` with nested subqueries in `FROM`, comma cross joins, `WHERE`,
//! `GROUP BY`, `ORDER BY`, `LIMIT`, `CASE WHEN`, arithmetic and the scalar
//! functions of the paper's activation set, plus `CREATE TABLE`, `INSERT`
//! and `DROP TABLE` for loading model and fact tables.
//!
//! Deliberate restrictions (documented, not accidental): no NULLs, inner
//! joins only, one statement per `execute` call.

pub mod catalog;
pub mod column;
pub mod config;
pub mod error;
pub mod exec;
pub mod expr;
pub mod persist;
pub mod plan;
pub mod session;
pub mod sql;
pub mod storage;
pub mod types;

pub use catalog::Catalog;
pub use column::{Batch, ColumnVector};
pub use config::EngineConfig;
pub use error::{EngineError, Result};
pub use session::{Engine, PlanCacheStats, QueryResult};
pub use storage::{ColumnDef, Schema, Table};
pub use types::{DataType, Value};
