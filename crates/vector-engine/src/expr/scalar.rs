//! Scalar function registry.
//!
//! The set covers everything ML-To-SQL emits — notably the activation
//! functions of paper Sec. 4.3.5 (`SIGMOID`, `TANH`, `RELU`, and `EXP` from
//! which a sigmoid can be spelled in portable SQL) plus the `SIN` used to
//! generate the paper's LSTM time series.

use crate::column::ColumnVector;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::types::DataType;

/// Built-in scalar functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarFunc {
    Exp,
    Ln,
    Sqrt,
    Abs,
    Sin,
    Cos,
    Tanh,
    Sigmoid,
    Relu,
    Floor,
    Ceil,
    Power,
    Least,
    Greatest,
}

impl ScalarFunc {
    /// Parse a function name (case-insensitive). Returns `None` for unknown
    /// names so the binder can try aggregates next.
    pub fn parse(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "EXP" => ScalarFunc::Exp,
            "LN" | "LOG" => ScalarFunc::Ln,
            "SQRT" => ScalarFunc::Sqrt,
            "ABS" => ScalarFunc::Abs,
            "SIN" => ScalarFunc::Sin,
            "COS" => ScalarFunc::Cos,
            "TANH" => ScalarFunc::Tanh,
            "SIGMOID" => ScalarFunc::Sigmoid,
            "RELU" => ScalarFunc::Relu,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            "POWER" | "POW" => ScalarFunc::Power,
            "LEAST" => ScalarFunc::Least,
            "GREATEST" => ScalarFunc::Greatest,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ScalarFunc::Exp => "EXP",
            ScalarFunc::Ln => "LN",
            ScalarFunc::Sqrt => "SQRT",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Sin => "SIN",
            ScalarFunc::Cos => "COS",
            ScalarFunc::Tanh => "TANH",
            ScalarFunc::Sigmoid => "SIGMOID",
            ScalarFunc::Relu => "RELU",
            ScalarFunc::Floor => "FLOOR",
            ScalarFunc::Ceil => "CEIL",
            ScalarFunc::Power => "POWER",
            ScalarFunc::Least => "LEAST",
            ScalarFunc::Greatest => "GREATEST",
        }
    }

    fn arity(self) -> (usize, usize) {
        match self {
            ScalarFunc::Power => (2, 2),
            ScalarFunc::Least | ScalarFunc::Greatest => (2, usize::MAX),
            _ => (1, 1),
        }
    }

    /// Result type; validates arity and argument types.
    pub fn return_type(self, args: &[Expr], input: &[DataType]) -> Result<DataType> {
        let (min, max) = self.arity();
        if args.len() < min || args.len() > max {
            return Err(EngineError::Plan(format!(
                "{} expects {} argument(s), got {}",
                self.name(),
                if min == max { min.to_string() } else { format!("{min}+") },
                args.len()
            )));
        }
        let mut result = DataType::Int;
        for a in args {
            let t = a.data_type(input)?;
            if !t.is_numeric() {
                return Err(EngineError::Type(format!(
                    "{} requires numeric arguments, got {}",
                    self.name(),
                    t.name()
                )));
            }
            if t == DataType::Float {
                result = DataType::Float;
            }
        }
        match self {
            // Transcendentals always produce floats.
            ScalarFunc::Exp
            | ScalarFunc::Ln
            | ScalarFunc::Sqrt
            | ScalarFunc::Sin
            | ScalarFunc::Cos
            | ScalarFunc::Tanh
            | ScalarFunc::Sigmoid
            | ScalarFunc::Power => Ok(DataType::Float),
            // Shape-preserving functions keep the promoted argument type.
            ScalarFunc::Abs
            | ScalarFunc::Relu
            | ScalarFunc::Floor
            | ScalarFunc::Ceil
            | ScalarFunc::Least
            | ScalarFunc::Greatest => Ok(result),
        }
    }

    /// Vectorized evaluation over pre-evaluated argument columns.
    pub fn eval(self, args: &[ColumnVector], rows: usize) -> Result<ColumnVector> {
        let (min, max) = self.arity();
        if args.len() < min || args.len() > max {
            return Err(EngineError::Execution(format!(
                "{}: wrong argument count {}",
                self.name(),
                args.len()
            )));
        }
        match self {
            ScalarFunc::Power => {
                let a = args[0].cast(DataType::Float)?;
                let b = args[1].cast(DataType::Float)?;
                let (xs, ys) = (a.as_float()?, b.as_float()?);
                Ok(ColumnVector::Float(xs.iter().zip(ys).map(|(x, y)| x.powf(*y)).collect()))
            }
            ScalarFunc::Least | ScalarFunc::Greatest => {
                let all_int = args.iter().all(|a| a.data_type() == DataType::Int);
                if all_int {
                    let cols: Result<Vec<&[i64]>> = args.iter().map(|a| a.as_int()).collect();
                    let cols = cols?;
                    let mut out = Vec::with_capacity(rows);
                    for r in 0..rows {
                        let mut acc = cols[0][r];
                        for c in &cols[1..] {
                            acc = if self == ScalarFunc::Least {
                                acc.min(c[r])
                            } else {
                                acc.max(c[r])
                            };
                        }
                        out.push(acc);
                    }
                    Ok(ColumnVector::Int(out))
                } else {
                    let cast: Result<Vec<ColumnVector>> =
                        args.iter().map(|a| a.cast(DataType::Float)).collect();
                    let cast = cast?;
                    let cols: Result<Vec<&[f64]>> = cast.iter().map(|a| a.as_float()).collect();
                    let cols = cols?;
                    let mut out = Vec::with_capacity(rows);
                    for r in 0..rows {
                        let mut acc = cols[0][r];
                        for c in &cols[1..] {
                            acc = if self == ScalarFunc::Least {
                                acc.min(c[r])
                            } else {
                                acc.max(c[r])
                            };
                        }
                        out.push(acc);
                    }
                    Ok(ColumnVector::Float(out))
                }
            }
            ScalarFunc::Abs | ScalarFunc::Relu if args[0].data_type() == DataType::Int => {
                let xs = args[0].as_int()?;
                let out = xs
                    .iter()
                    .map(|&x| if self == ScalarFunc::Abs { x.abs() } else { x.max(0) })
                    .collect();
                Ok(ColumnVector::Int(out))
            }
            ScalarFunc::Floor | ScalarFunc::Ceil if args[0].data_type() == DataType::Int => {
                Ok(args[0].clone())
            }
            _ => {
                let a = args[0].cast(DataType::Float)?;
                let xs = a.as_float()?;
                let out: Vec<f64> = xs
                    .iter()
                    .map(|&x| match self {
                        ScalarFunc::Exp => x.exp(),
                        ScalarFunc::Ln => x.ln(),
                        ScalarFunc::Sqrt => x.sqrt(),
                        ScalarFunc::Abs => x.abs(),
                        ScalarFunc::Sin => x.sin(),
                        ScalarFunc::Cos => x.cos(),
                        ScalarFunc::Tanh => x.tanh(),
                        ScalarFunc::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                        ScalarFunc::Relu => x.max(0.0),
                        ScalarFunc::Floor => x.floor(),
                        ScalarFunc::Ceil => x.ceil(),
                        _ => unreachable!("handled above"),
                    })
                    .collect();
                Ok(ColumnVector::Float(out))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn floats(v: Vec<f64>) -> ColumnVector {
        ColumnVector::Float(v)
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(ScalarFunc::parse("sigmoid"), Some(ScalarFunc::Sigmoid));
        assert_eq!(ScalarFunc::parse("TANH"), Some(ScalarFunc::Tanh));
        assert_eq!(ScalarFunc::parse("nosuch"), None);
    }

    #[test]
    fn activations_match_reference() {
        let xs = floats(vec![-2.0, 0.0, 2.0]);
        let sig = ScalarFunc::Sigmoid.eval(std::slice::from_ref(&xs), 3).unwrap();
        let sig = sig.as_float().unwrap();
        assert!((sig[1] - 0.5).abs() < 1e-12);
        assert!((sig[2] - 1.0 / (1.0 + (-2.0f64).exp())).abs() < 1e-12);

        let relu = ScalarFunc::Relu.eval(std::slice::from_ref(&xs), 3).unwrap();
        assert_eq!(relu, floats(vec![0.0, 0.0, 2.0]));

        let tanh = ScalarFunc::Tanh.eval(&[xs], 3).unwrap();
        assert!((tanh.as_float().unwrap()[2] - 2.0f64.tanh()).abs() < 1e-12);
    }

    #[test]
    fn relu_preserves_int_type() {
        let xs = ColumnVector::Int(vec![-3, 0, 3]);
        assert_eq!(ScalarFunc::Relu.eval(&[xs], 3).unwrap(), ColumnVector::Int(vec![0, 0, 3]));
    }

    #[test]
    fn power_and_variadic_extremes() {
        let a = floats(vec![2.0, 3.0]);
        let b = floats(vec![3.0, 2.0]);
        assert_eq!(
            ScalarFunc::Power.eval(&[a.clone(), b.clone()], 2).unwrap(),
            floats(vec![8.0, 9.0])
        );
        let c = floats(vec![10.0, -5.0]);
        assert_eq!(
            ScalarFunc::Least.eval(&[a.clone(), b.clone(), c.clone()], 2).unwrap(),
            floats(vec![2.0, -5.0])
        );
        assert_eq!(ScalarFunc::Greatest.eval(&[a, b, c], 2).unwrap(), floats(vec![10.0, 3.0]));
    }

    #[test]
    fn variadic_int_path() {
        let a = ColumnVector::Int(vec![1, 9]);
        let b = ColumnVector::Int(vec![5, 2]);
        assert_eq!(
            ScalarFunc::Least.eval(&[a.clone(), b.clone()], 2).unwrap(),
            ColumnVector::Int(vec![1, 2])
        );
        assert_eq!(ScalarFunc::Greatest.eval(&[a, b], 2).unwrap(), ColumnVector::Int(vec![5, 9]));
    }

    #[test]
    fn return_types() {
        let col = Expr::col(0);
        let input = [DataType::Int];
        assert_eq!(
            ScalarFunc::Sigmoid.return_type(std::slice::from_ref(&col), &input).unwrap(),
            DataType::Float
        );
        assert_eq!(
            ScalarFunc::Abs.return_type(std::slice::from_ref(&col), &input).unwrap(),
            DataType::Int
        );
        assert!(ScalarFunc::Power.return_type(std::slice::from_ref(&col), &input).is_err());
        let s = Expr::lit(Value::Str("x".into()));
        assert!(ScalarFunc::Exp.return_type(&[s], &input).is_err());
    }

    #[test]
    fn floor_on_ints_is_identity() {
        let xs = ColumnVector::Int(vec![7]);
        assert_eq!(ScalarFunc::Floor.eval(std::slice::from_ref(&xs), 1).unwrap(), xs);
    }
}
