//! Bound (physical) expressions and their vectorized evaluation.
//!
//! Expressions are bound to column ordinals of their input relation by the
//! planner; evaluation is vector-at-a-time over a [`Batch`].

pub mod scalar;

pub use scalar::ScalarFunc;

use crate::column::{Batch, ColumnVector};
use crate::error::{EngineError, Result};
use crate::types::{DataType, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators, in SQL semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
        )
    }

    pub fn sql_symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// A bound expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to input column by ordinal.
    Column(usize),
    /// A constant.
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// Searched CASE: `CASE WHEN cond THEN value ... ELSE value END`.
    /// (The binder desugars simple CASE into this form.)
    Case {
        whens: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Func {
        func: ScalarFunc,
        args: Vec<Expr>,
    },
    Cast {
        expr: Box<Expr>,
        to: DataType,
    },
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Result type given input column types.
    pub fn data_type(&self, input: &[DataType]) -> Result<DataType> {
        match self {
            Expr::Column(i) => input
                .get(*i)
                .copied()
                .ok_or_else(|| EngineError::Plan(format!("column ordinal {i} out of range"))),
            Expr::Literal(v) => Ok(v.data_type()),
            Expr::Binary { op, left, right } => {
                let l = left.data_type(input)?;
                let r = right.data_type(input)?;
                if op.is_comparison() {
                    if l != r && !(l.is_numeric() && r.is_numeric()) {
                        return Err(EngineError::Type(format!(
                            "cannot compare {} with {}",
                            l.name(),
                            r.name()
                        )));
                    }
                    Ok(DataType::Bool)
                } else if op.is_arithmetic() {
                    l.promote(r)
                } else {
                    // AND / OR
                    if l != DataType::Bool || r != DataType::Bool {
                        return Err(EngineError::Type(format!(
                            "{} requires boolean operands",
                            op.sql_symbol()
                        )));
                    }
                    Ok(DataType::Bool)
                }
            }
            Expr::Unary { op: UnaryOp::Neg, expr } => {
                let t = expr.data_type(input)?;
                if !t.is_numeric() {
                    return Err(EngineError::Type(format!("cannot negate {}", t.name())));
                }
                Ok(t)
            }
            Expr::Unary { op: UnaryOp::Not, expr } => {
                if expr.data_type(input)? != DataType::Bool {
                    return Err(EngineError::Type("NOT requires a boolean operand".into()));
                }
                Ok(DataType::Bool)
            }
            Expr::Case { whens, else_expr } => {
                let mut result: Option<DataType> = None;
                for (cond, value) in whens {
                    if cond.data_type(input)? != DataType::Bool {
                        return Err(EngineError::Type(
                            "CASE WHEN condition must be boolean".into(),
                        ));
                    }
                    let t = value.data_type(input)?;
                    result = Some(match result {
                        None => t,
                        Some(prev) if prev == t => prev,
                        Some(prev) => prev.promote(t)?,
                    });
                }
                if let Some(e) = else_expr {
                    let t = e.data_type(input)?;
                    result = Some(match result {
                        None => t,
                        Some(prev) if prev == t => prev,
                        Some(prev) => prev.promote(t)?,
                    });
                }
                result.ok_or_else(|| EngineError::Plan("CASE with no branches".into()))
            }
            Expr::Func { func, args } => func.return_type(args, input),
            Expr::Cast { to, .. } => Ok(*to),
        }
    }

    /// Vectorized evaluation over a batch.
    pub fn eval(&self, batch: &Batch) -> Result<ColumnVector> {
        match self {
            Expr::Column(i) => Ok(batch.column(*i).clone()),
            Expr::Literal(v) => Ok(ColumnVector::repeat(v, batch.num_rows())),
            Expr::Binary { op, left, right } => {
                let l = left.eval(batch)?;
                let r = right.eval(batch)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(batch)?;
                match op {
                    UnaryOp::Neg => match v {
                        ColumnVector::Int(xs) => {
                            Ok(ColumnVector::Int(xs.iter().map(|x| -x).collect()))
                        }
                        ColumnVector::Float(xs) => {
                            Ok(ColumnVector::Float(xs.iter().map(|x| -x).collect()))
                        }
                        other => Err(EngineError::Type(format!(
                            "cannot negate {}",
                            other.data_type().name()
                        ))),
                    },
                    UnaryOp::Not => {
                        let b = v.as_bool()?;
                        Ok(ColumnVector::Bool(b.iter().map(|x| !x).collect()))
                    }
                }
            }
            Expr::Case { whens, else_expr } => eval_case(whens, else_expr.as_deref(), batch),
            Expr::Func { func, args } => {
                let evaluated: Result<Vec<ColumnVector>> =
                    args.iter().map(|a| a.eval(batch)).collect();
                func.eval(&evaluated?, batch.num_rows())
            }
            Expr::Cast { expr, to } => expr.eval(batch)?.cast(*to),
        }
    }

    /// Collect all referenced column ordinals.
    pub fn collect_columns(&self, out: &mut BTreeSet<usize>) {
        match self {
            Expr::Column(i) => {
                out.insert(*i);
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Case { whens, else_expr } => {
                for (c, v) in whens {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Cast { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Referenced column ordinals as a sorted set.
    pub fn columns(&self) -> BTreeSet<usize> {
        let mut s = BTreeSet::new();
        self.collect_columns(&mut s);
        s
    }

    /// Rewrite column ordinals through `f`.
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> Expr {
        self.transform(&|e| match e {
            Expr::Column(i) => Some(Expr::Column(f(*i))),
            _ => None,
        })
    }

    /// Replace every column reference `i` with `replacements[i]` — used to
    /// push predicates through projections.
    pub fn substitute(&self, replacements: &[Expr]) -> Expr {
        self.transform(&|e| match e {
            Expr::Column(i) => Some(replacements[*i].clone()),
            _ => None,
        })
    }

    /// Bottom-up rewriting: `f` returns `Some(replacement)` to rewrite a
    /// node (children already rewritten), `None` to keep it.
    pub fn transform(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match self {
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(expr.transform(f)) },
            Expr::Case { whens, else_expr } => Expr::Case {
                whens: whens.iter().map(|(c, v)| (c.transform(f), v.transform(f))).collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.transform(f))),
            },
            Expr::Func { func, args } => {
                Expr::Func { func: *func, args: args.iter().map(|a| a.transform(f)).collect() }
            }
            Expr::Cast { expr, to } => Expr::Cast { expr: Box::new(expr.transform(f)), to: *to },
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// Split a conjunction into its AND-ed conjuncts.
    pub fn split_conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::Binary { op: BinaryOp::And, left, right } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other.clone()],
        }
    }

    /// AND together a list of conjuncts (empty list → TRUE).
    pub fn conjoin(conjuncts: Vec<Expr>) -> Expr {
        conjuncts
            .into_iter()
            .reduce(|a, b| Expr::binary(BinaryOp::And, a, b))
            .unwrap_or(Expr::Literal(Value::Bool(true)))
    }
}

fn compare(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    }
}

fn eval_binary(op: BinaryOp, l: &ColumnVector, r: &ColumnVector) -> Result<ColumnVector> {
    if l.len() != r.len() {
        return Err(EngineError::Execution(format!(
            "operand length mismatch: {} vs {}",
            l.len(),
            r.len()
        )));
    }
    if op.is_arithmetic() {
        return eval_arithmetic(op, l, r);
    }
    if op.is_comparison() {
        // Fast typed paths.
        return match (l, r) {
            (ColumnVector::Int(a), ColumnVector::Int(b)) => Ok(ColumnVector::Bool(
                a.iter().zip(b).map(|(x, y)| compare(op, x.cmp(y))).collect(),
            )),
            (ColumnVector::Float(a), ColumnVector::Float(b)) => Ok(ColumnVector::Bool(
                a.iter().zip(b).map(|(x, y)| compare(op, x.total_cmp(y))).collect(),
            )),
            (ColumnVector::Str(a), ColumnVector::Str(b)) => Ok(ColumnVector::Bool(
                a.iter().zip(b).map(|(x, y)| compare(op, x.cmp(y))).collect(),
            )),
            (ColumnVector::Bool(a), ColumnVector::Bool(b)) => Ok(ColumnVector::Bool(
                a.iter().zip(b).map(|(x, y)| compare(op, x.cmp(y))).collect(),
            )),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                let a = a.cast(DataType::Float)?;
                let b = b.cast(DataType::Float)?;
                eval_binary(op, &a, &b)
            }
            (a, b) => Err(EngineError::Type(format!(
                "cannot compare {} with {}",
                a.data_type().name(),
                b.data_type().name()
            ))),
        };
    }
    // AND / OR
    let a = l.as_bool()?;
    let b = r.as_bool()?;
    let out = match op {
        BinaryOp::And => a.iter().zip(b).map(|(x, y)| *x && *y).collect(),
        BinaryOp::Or => a.iter().zip(b).map(|(x, y)| *x || *y).collect(),
        _ => unreachable!(),
    };
    Ok(ColumnVector::Bool(out))
}

fn eval_arithmetic(op: BinaryOp, l: &ColumnVector, r: &ColumnVector) -> Result<ColumnVector> {
    match (l, r) {
        (ColumnVector::Int(a), ColumnVector::Int(b)) => {
            let mut out = Vec::with_capacity(a.len());
            for (x, y) in a.iter().zip(b) {
                out.push(match op {
                    BinaryOp::Add => x.wrapping_add(*y),
                    BinaryOp::Sub => x.wrapping_sub(*y),
                    BinaryOp::Mul => x.wrapping_mul(*y),
                    BinaryOp::Div => {
                        if *y == 0 {
                            return Err(EngineError::Execution("integer division by zero".into()));
                        }
                        x / y
                    }
                    BinaryOp::Mod => {
                        if *y == 0 {
                            return Err(EngineError::Execution("integer modulo by zero".into()));
                        }
                        x % y
                    }
                    _ => unreachable!(),
                });
            }
            Ok(ColumnVector::Int(out))
        }
        (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
            let af = a.cast(DataType::Float)?;
            let bf = b.cast(DataType::Float)?;
            let (ColumnVector::Float(xs), ColumnVector::Float(ys)) = (&af, &bf) else {
                unreachable!("cast to float");
            };
            let out = xs
                .iter()
                .zip(ys)
                .map(|(x, y)| match op {
                    BinaryOp::Add => x + y,
                    BinaryOp::Sub => x - y,
                    BinaryOp::Mul => x * y,
                    BinaryOp::Div => x / y,
                    BinaryOp::Mod => x % y,
                    _ => unreachable!(),
                })
                .collect();
            Ok(ColumnVector::Float(out))
        }
        (a, b) => Err(EngineError::Type(format!(
            "cannot apply {} to {} and {}",
            op.sql_symbol(),
            a.data_type().name(),
            b.data_type().name()
        ))),
    }
}

fn eval_case(
    whens: &[(Expr, Expr)],
    else_expr: Option<&Expr>,
    batch: &Batch,
) -> Result<ColumnVector> {
    let rows = batch.num_rows();
    // Evaluate all branch values, then select per row. Branch result types
    // are unified by promotion.
    let mut conds = Vec::with_capacity(whens.len());
    let mut values = Vec::with_capacity(whens.len() + 1);
    for (c, v) in whens {
        conds.push(c.eval(batch)?);
        values.push(v.eval(batch)?);
    }
    if let Some(e) = else_expr {
        values.push(e.eval(batch)?);
    }
    let mut out_type = values
        .first()
        .map(ColumnVector::data_type)
        .ok_or_else(|| EngineError::Plan("CASE with no branches".into()))?;
    for v in &values {
        if v.data_type() != out_type {
            out_type = out_type.promote(v.data_type())?;
        }
    }
    let values: Result<Vec<ColumnVector>> = values.iter().map(|v| v.cast(out_type)).collect();
    let values = values?;
    // Extract the branch masks once; the row loop then runs over plain
    // `&[bool]` slices instead of re-checking the column type per row.
    let masks: Result<Vec<&[bool]>> = conds.iter().map(ColumnVector::as_bool).collect();
    let masks = masks?;
    let mut out = ColumnVector::with_capacity(out_type, rows);
    'rows: for row in 0..rows {
        for (bi, mask) in masks.iter().enumerate() {
            if mask[row] {
                out.push_from(&values[bi], row);
                continue 'rows;
            }
        }
        if else_expr.is_some() {
            out.push_from(&values[values.len() - 1], row);
        } else {
            // SQL says NULL; the engine is NULL-free, so a missing ELSE
            // yields the type's zero value and is documented as such.
            out.push(zero_of(out_type))?;
        }
    }
    Ok(out)
}

fn zero_of(t: DataType) -> Value {
    match t {
        DataType::Int => Value::Int(0),
        DataType::Float => Value::Float(0.0),
        DataType::Bool => Value::Bool(false),
        DataType::Str => Value::Str(String::new()),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql_symbol())
            }
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(-{expr})"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Case { whens, else_expr } => {
                write!(f, "CASE")?;
                for (c, v) in whens {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::new(vec![
            ColumnVector::Int(vec![1, 2, 3, 4]),
            ColumnVector::Float(vec![0.5, 1.5, 2.5, 3.5]),
            ColumnVector::Bool(vec![true, false, true, false]),
        ])
    }

    #[test]
    fn arithmetic_promotes_int_to_float() {
        let e = Expr::binary(BinaryOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(e.data_type(&[DataType::Int, DataType::Float]).unwrap(), DataType::Float);
        assert_eq!(e.eval(&batch()).unwrap(), ColumnVector::Float(vec![1.5, 3.5, 5.5, 7.5]));
    }

    #[test]
    fn int_arithmetic_stays_int() {
        let e = Expr::binary(BinaryOp::Mul, Expr::col(0), Expr::lit(Value::Int(10)));
        assert_eq!(e.eval(&batch()).unwrap(), ColumnVector::Int(vec![10, 20, 30, 40]));
    }

    #[test]
    fn division_by_zero_errors_for_int_not_float() {
        let e = Expr::binary(BinaryOp::Div, Expr::col(0), Expr::lit(Value::Int(0)));
        assert!(e.eval(&batch()).is_err());
        let e = Expr::binary(BinaryOp::Div, Expr::col(1), Expr::lit(Value::Float(0.0)));
        let out = e.eval(&batch()).unwrap();
        assert!(out.as_float().unwrap().iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn comparisons_and_logic() {
        let e = Expr::binary(
            BinaryOp::And,
            Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::lit(Value::Int(1))),
            Expr::binary(BinaryOp::Lt, Expr::col(1), Expr::lit(Value::Float(3.0))),
        );
        assert_eq!(e.eval(&batch()).unwrap(), ColumnVector::Bool(vec![false, true, true, false]));
    }

    #[test]
    fn mixed_numeric_comparison() {
        let e = Expr::binary(BinaryOp::GtEq, Expr::col(1), Expr::col(0));
        assert_eq!(e.eval(&batch()).unwrap(), ColumnVector::Bool(vec![false, false, false, false]));
    }

    #[test]
    fn case_selects_per_row_with_promotion() {
        // CASE WHEN c2 THEN col0 ELSE col1 END — int and float branches
        // promote to float.
        let e = Expr::Case {
            whens: vec![(Expr::col(2), Expr::col(0))],
            else_expr: Some(Box::new(Expr::col(1))),
        };
        assert_eq!(
            e.data_type(&[DataType::Int, DataType::Float, DataType::Bool]).unwrap(),
            DataType::Float
        );
        assert_eq!(e.eval(&batch()).unwrap(), ColumnVector::Float(vec![1.0, 1.5, 3.0, 3.5]));
    }

    #[test]
    fn case_without_else_yields_zero() {
        let e = Expr::Case { whens: vec![(Expr::col(2), Expr::col(0))], else_expr: None };
        assert_eq!(e.eval(&batch()).unwrap(), ColumnVector::Int(vec![1, 0, 3, 0]));
    }

    #[test]
    fn unary_ops() {
        let neg = Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::col(0)) };
        assert_eq!(neg.eval(&batch()).unwrap(), ColumnVector::Int(vec![-1, -2, -3, -4]));
        let not = Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::col(2)) };
        assert_eq!(not.eval(&batch()).unwrap(), ColumnVector::Bool(vec![false, true, false, true]));
    }

    #[test]
    fn split_and_conjoin_round_trip() {
        let a = Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::lit(Value::Int(0)));
        let b = Expr::col(2);
        let c = Expr::binary(BinaryOp::Lt, Expr::col(1), Expr::lit(Value::Float(9.0)));
        let all = Expr::conjoin(vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(all.split_conjuncts(), vec![a, b, c]);
        assert_eq!(Expr::conjoin(vec![]), Expr::lit(Value::Bool(true)));
    }

    #[test]
    fn column_collection_and_remapping() {
        let e = Expr::binary(BinaryOp::Add, Expr::col(1), Expr::col(3));
        assert_eq!(e.columns().into_iter().collect::<Vec<_>>(), vec![1, 3]);
        let shifted = e.map_columns(&|i| i + 10);
        assert_eq!(shifted.columns().into_iter().collect::<Vec<_>>(), vec![11, 13]);
    }

    #[test]
    fn substitution_inlines_projection_exprs() {
        // predicate: #0 > 5 where projection #0 = colA + colB
        let pred = Expr::binary(BinaryOp::Gt, Expr::col(0), Expr::lit(Value::Int(5)));
        let proj = vec![Expr::binary(BinaryOp::Add, Expr::col(2), Expr::col(4))];
        let pushed = pred.substitute(&proj);
        assert_eq!(
            pushed,
            Expr::binary(
                BinaryOp::Gt,
                Expr::binary(BinaryOp::Add, Expr::col(2), Expr::col(4)),
                Expr::lit(Value::Int(5))
            )
        );
    }

    #[test]
    fn type_errors_are_reported() {
        let e = Expr::binary(BinaryOp::Add, Expr::col(2), Expr::lit(Value::Int(1)));
        assert!(e.data_type(&[DataType::Int, DataType::Float, DataType::Bool]).is_err());
        assert!(e.eval(&batch()).is_err());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::binary(BinaryOp::Mul, Expr::col(0), Expr::lit(Value::Float(2.0)));
        assert_eq!(e.to_string(), "(#0 * 2)");
    }
}
