//! Scalar types and values.

use crate::error::{EngineError, Result};
use std::cmp::Ordering;
use std::fmt;

/// Column data types. The engine is NULL-free by design (see crate docs);
/// every value of a column is present.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`FLOAT`, `REAL`, `DOUBLE`). The paper's model table
    /// stores 4-byte floats; we widen to f64 for SQL arithmetic, which only
    /// tightens numeric agreement between approaches.
    Float,
    /// Boolean (`BOOLEAN`).
    Bool,
    /// UTF-8 string (`VARCHAR`, `TEXT`).
    Str,
}

impl DataType {
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Bool => "BOOLEAN",
            DataType::Str => "VARCHAR",
        }
    }

    /// True for INT and FLOAT.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Result type of an arithmetic operation between two numeric types.
    pub fn promote(self, other: DataType) -> Result<DataType> {
        match (self, other) {
            (DataType::Int, DataType::Int) => Ok(DataType::Int),
            (a, b) if a.is_numeric() && b.is_numeric() => Ok(DataType::Float),
            (a, b) => Err(EngineError::Type(format!(
                "cannot apply arithmetic to {} and {}",
                a.name(),
                b.name()
            ))),
        }
    }

    /// Parse a SQL type name.
    pub fn parse_sql(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Ok(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "FLOAT4" | "FLOAT8" => Ok(DataType::Float),
            "BOOLEAN" | "BOOL" => Ok(DataType::Bool),
            "VARCHAR" | "TEXT" | "STRING" | "CHAR" => Ok(DataType::Str),
            other => Err(EngineError::Parse(format!("unknown type name {other:?}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Bool(_) => DataType::Bool,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Numeric view as f64; errors for non-numeric values.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            other => Err(EngineError::Type(format!("expected a number, found {other}"))),
        }
    }

    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) => Ok(*v as i64),
            other => Err(EngineError::Type(format!("expected an integer, found {other}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EngineError::Type(format!("expected a boolean, found {other}"))),
        }
    }

    /// Cast to a target type following SQL conversion rules.
    pub fn cast(&self, to: DataType) -> Result<Value> {
        match (self, to) {
            (v, t) if v.data_type() == t => Ok(v.clone()),
            (Value::Int(v), DataType::Float) => Ok(Value::Float(*v as f64)),
            (Value::Float(v), DataType::Int) => Ok(Value::Int(*v as i64)),
            (Value::Int(v), DataType::Str) => Ok(Value::Str(v.to_string())),
            (Value::Float(v), DataType::Str) => Ok(Value::Str(v.to_string())),
            (Value::Bool(v), DataType::Str) => Ok(Value::Str(v.to_string())),
            (Value::Str(s), DataType::Int) => s
                .trim()
                .parse()
                .map(Value::Int)
                .map_err(|_| EngineError::Type(format!("cannot cast {s:?} to INT"))),
            (Value::Str(s), DataType::Float) => s
                .trim()
                .parse()
                .map(Value::Float)
                .map_err(|_| EngineError::Type(format!("cannot cast {s:?} to FLOAT"))),
            (v, t) => Err(EngineError::Type(format!(
                "cannot cast {} to {}",
                v.data_type().name(),
                t.name()
            ))),
        }
    }

    /// Total ordering used by ORDER BY, MIN/MAX and SMA pruning. Numeric
    /// values compare by numeric value across INT/FLOAT; NaN sorts last.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if a.data_type().is_numeric() && b.data_type().is_numeric() => {
                let (x, y) = (a.as_f64().unwrap_or(f64::NAN), b.as_f64().unwrap_or(f64::NAN));
                x.total_cmp(&y)
            }
            // Heterogeneous non-numeric comparison: order by type tag so
            // sorting stays total. Planner type checks prevent reaching this
            // from SQL.
            (a, b) => type_tag(a).cmp(&type_tag(b)),
        }
    }
}

fn type_tag(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_rules() {
        assert_eq!(DataType::Int.promote(DataType::Int).unwrap(), DataType::Int);
        assert_eq!(DataType::Int.promote(DataType::Float).unwrap(), DataType::Float);
        assert_eq!(DataType::Float.promote(DataType::Float).unwrap(), DataType::Float);
        assert!(DataType::Str.promote(DataType::Int).is_err());
    }

    #[test]
    fn sql_type_names() {
        assert_eq!(DataType::parse_sql("integer").unwrap(), DataType::Int);
        assert_eq!(DataType::parse_sql("REAL").unwrap(), DataType::Float);
        assert_eq!(DataType::parse_sql("varchar").unwrap(), DataType::Str);
        assert!(DataType::parse_sql("BLOB").is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(Value::Int(3).cast(DataType::Float).unwrap(), Value::Float(3.0));
        assert_eq!(Value::Float(3.7).cast(DataType::Int).unwrap(), Value::Int(3));
        assert_eq!(Value::Str(" 42 ".into()).cast(DataType::Int).unwrap(), Value::Int(42));
        assert!(Value::Str("x".into()).cast(DataType::Int).is_err());
        assert!(Value::Bool(true).cast(DataType::Int).is_err());
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(Value::Str("b".into()).total_cmp(&Value::Str("a".into())), Ordering::Greater);
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(5).as_f64().unwrap(), 5.0);
        assert_eq!(Value::Float(5.9).as_i64().unwrap(), 5);
        assert!(Value::Str("hi".into()).as_f64().is_err());
        assert!(Value::Int(1).as_bool().is_err());
    }
}
