//! Engine error type.

use std::fmt;

/// All errors the engine surfaces to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexer/parser rejected the SQL text.
    Parse(String),
    /// Name resolution or semantic analysis failed.
    Plan(String),
    /// Type mismatch detected during planning or execution.
    Type(String),
    /// Runtime execution failure.
    Execution(String),
    /// Catalog problem (unknown/duplicate table, schema mismatch, ...).
    Catalog(String),
    /// A feature the engine deliberately does not support.
    Unsupported(String),
    /// Persistent-storage failure: filesystem IO, a checksum-rejected
    /// (torn) page or WAL record, or buffer-pool exhaustion.
    Io(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::Plan(m) => write!(f, "planning error: {m}"),
            EngineError::Type(m) => write!(f, "type error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Io(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<storage::StorageError> for EngineError {
    fn from(e: storage::StorageError) -> EngineError {
        EngineError::Io(e.to_string())
    }
}

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = EngineError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = EngineError::Unsupported("outer joins".into());
        assert!(e.to_string().starts_with("unsupported:"));
    }
}
