//! The process-wide metric catalog.
//!
//! Every metric in the system is a `static` here, referenced directly by
//! the instrumented crates — no registration step, no lookup on the hot
//! path, and [`crate::snapshot`] can walk a fixed list. The naming
//! convention is `layer.subject.unit`: `_us` histograms hold
//! microseconds; [`crate::StageMetrics`] entries are listed under their
//! `.rows` name and expand to `.rows` / `.batches` / `.time_us` in
//! snapshots.

use crate::{Counter, Gauge, Histogram, StageMetrics};

// --- tensor: kernel layer ------------------------------------------------

/// `sgemm` invocations (any dispatch path).
pub static TENSOR_GEMM_CALLS: Counter = Counter::new();
/// Floating-point operations issued to `sgemm` (2·m·k·n per call).
pub static TENSOR_GEMM_FLOPS: Counter = Counter::new();
/// Jobs pushed to the persistent kernel worker pool.
pub static TENSOR_POOL_JOBS: Counter = Counter::new();
/// Worker threads currently spawned in the kernel pool.
pub static TENSOR_POOL_WORKERS: Gauge = Gauge::new();
/// Wall time of each `sgemm` call, µs (span-gated).
pub static TENSOR_GEMM_US: Histogram = Histogram::new();
/// Time spent packing A/B panels into kernel scratch, µs (span-gated).
pub static TENSOR_PACK_US: Histogram = Histogram::new();
/// Quantized `qgemm_dense` invocations (any dispatch path).
pub static TENSOR_GEMM_I8_CALLS: Counter = Counter::new();
/// Integer multiply-accumulate operations issued to the int8 GEMM
/// (2·m·k·n per call, counted like fp32 FLOPs for comparability).
pub static TENSOR_GEMM_I8_FLOPS: Counter = Counter::new();
/// Wall time of each int8 GEMM call — quantize, multiply, fused
/// dequant epilogue — µs (span-gated).
pub static TENSOR_GEMM_I8_US: Histogram = Histogram::new();

// --- sched: unified work-stealing scheduler -------------------------------

/// Serve-class tasks submitted (latency-sensitive, high-priority injector).
pub static SCHED_TASKS_SERVE: Counter = Counter::new();
/// Query-class tasks submitted (partition/operator morsels).
pub static SCHED_TASKS_QUERY: Counter = Counter::new();
/// Kernel-class tasks submitted (GEMM tile ranges).
pub static SCHED_TASKS_KERNEL: Counter = Counter::new();
/// Tasks a worker claimed from another worker's deque.
pub static SCHED_STEALS: Counter = Counter::new();
/// Times a worker parked on the idle condvar.
pub static SCHED_PARKS: Counter = Counter::new();
/// Times a parked worker was woken.
pub static SCHED_UNPARKS: Counter = Counter::new();
/// Task panics caught by the scheduler's per-task `catch_unwind`.
pub static SCHED_PANICS_CAUGHT: Counter = Counter::new();
/// Worker threads owned by the process-wide scheduler.
pub static SCHED_WORKERS: Gauge = Gauge::new();
/// Tasks currently queued (all deques + both injectors).
pub static SCHED_QUEUE_DEPTH: Gauge = Gauge::new();
/// Submit-to-claim queue wait per task, µs (span-gated).
pub static SCHED_QUEUE_WAIT_US: Histogram = Histogram::new();
/// Run time of serve-class tasks, µs (span-gated).
pub static SCHED_TASK_SERVE_US: Histogram = Histogram::new();
/// Run time of query-class tasks, µs (span-gated).
pub static SCHED_TASK_QUERY_US: Histogram = Histogram::new();
/// Run time of kernel-class tasks, µs (span-gated).
pub static SCHED_TASK_KERNEL_US: Histogram = Histogram::new();

// --- vector-engine: executor + plan cache --------------------------------

/// Plan-cache lookups that returned a cached plan at the current epoch.
pub static EXEC_PLAN_CACHE_HITS: Counter = Counter::new();
/// Plan-cache lookups that found nothing for the SQL text.
pub static EXEC_PLAN_CACHE_MISSES: Counter = Counter::new();
/// Cached plans discarded because the catalog epoch moved.
pub static EXEC_PLAN_CACHE_INVALIDATIONS: Counter = Counter::new();
/// Catalog epoch bumps (CREATE/DROP/append).
pub static EXEC_CATALOG_EPOCH_BUMPS: Counter = Counter::new();

pub static EXEC_SCAN: StageMetrics = StageMetrics::new();
pub static EXEC_FILTER: StageMetrics = StageMetrics::new();
pub static EXEC_PROJECT: StageMetrics = StageMetrics::new();
pub static EXEC_JOIN: StageMetrics = StageMetrics::new();
pub static EXEC_AGG: StageMetrics = StageMetrics::new();
pub static EXEC_SORT: StageMetrics = StageMetrics::new();
pub static EXEC_OTHER: StageMetrics = StageMetrics::new();

// --- modeljoin: model build + probe --------------------------------------

/// Models assembled from relational slabs (`build_parallel` completions).
pub static MODELJOIN_BUILD_COUNT: Counter = Counter::new();
/// Quantized models derived from built fp32 models.
pub static MODELJOIN_QUANT_BUILDS: Counter = Counter::new();
/// ModelCache fp32 lookups served from cache.
pub static MODELJOIN_CACHE_HITS: Counter = Counter::new();
/// ModelCache fp32 lookups that had to build.
pub static MODELJOIN_CACHE_MISSES: Counter = Counter::new();
/// ModelCache int8 lookups served from cache.
pub static MODELJOIN_CACHE_HITS_I8: Counter = Counter::new();
/// ModelCache int8 lookups that had to quantize.
pub static MODELJOIN_CACHE_MISSES_I8: Counter = Counter::new();
/// Wall time of each model build, µs (span-gated).
pub static MODELJOIN_BUILD_US: Histogram = Histogram::new();
/// Probe-side inference throughput and time (rows/batches/µs).
pub static MODELJOIN_PROBE: StageMetrics = StageMetrics::new();

// --- shard: sharded scatter-gather facade ---------------------------------

/// Queries routed to exactly one shard (replicated-only plans and
/// shard-key point lookups).
pub static SHARD_QUERIES_SINGLE: Counter = Counter::new();
/// Queries scattered to every shard and gathered without a merge step.
pub static SHARD_QUERIES_SCATTER: Counter = Counter::new();
/// Queries that ran the cross-shard partial-aggregate merge.
pub static SHARD_QUERIES_PARTIAL_AGG: Counter = Counter::new();
/// Queries that ran a hash-partitioned shuffle exchange before joining.
pub static SHARD_QUERIES_SHUFFLE: Counter = Counter::new();
/// Rows repartitioned through the shuffle exchange.
pub static SHARD_SHUFFLE_ROWS: Counter = Counter::new();
/// Batches produced by the shuffle exchange (post-split, non-empty).
pub static SHARD_SHUFFLE_BATCHES: Counter = Counter::new();
/// Estimated bytes moved through the shuffle exchange.
pub static SHARD_SHUFFLE_BYTES: Counter = Counter::new();
/// Shards owned by the most recently constructed `ShardedEngine`.
pub static SHARD_COUNT: Gauge = Gauge::new();
/// Rows contributed by one shard to one gather (or routed to one shard by
/// one bulk load) — the skew signal of the hash partitioning.
pub static SHARD_ROWS_PER_SHARD: Histogram = Histogram::new();
/// Wall time from scatter submission until every shard's result is
/// gathered, µs (span-gated).
pub static SHARD_GATHER_WAIT_US: Histogram = Histogram::new();

// --- storage: buffer pool + WAL + recovery --------------------------------

/// Buffer-pool page requests answered from a resident frame.
pub static STORAGE_POOL_HITS: Counter = Counter::new();
/// Buffer-pool page requests that had to read the data file.
pub static STORAGE_POOL_MISSES: Counter = Counter::new();
/// Frames evicted by the CLOCK replacer to make room.
pub static STORAGE_POOL_EVICTIONS: Counter = Counter::new();
/// Dirty frames written back to the data file (evictions + flushes).
pub static STORAGE_PAGES_WRITTEN: Counter = Counter::new();
/// WAL records appended.
pub static STORAGE_WAL_APPENDS: Counter = Counter::new();
/// WAL `fsync` calls issued (group commit batches concurrent committers
/// behind one, so this counts batches, not commits).
pub static STORAGE_WAL_FSYNCS: Counter = Counter::new();
/// Bytes appended to the WAL.
pub static STORAGE_WAL_BYTES: Counter = Counter::new();
/// Committed WAL records replayed by crash recovery.
pub static STORAGE_RECOVERY_RECORDS_REPLAYED: Counter = Counter::new();
/// Checkpoints completed (pages + directory durable, WAL truncated).
pub static STORAGE_CHECKPOINTS: Counter = Counter::new();
/// Page reads served unbuffered because every frame was pinned — the
/// graceful-degradation path that keeps a scan alive on a tiny pool.
pub static STORAGE_POOL_BYPASS_READS: Counter = Counter::new();
/// Page writes sent straight to the data file because every frame was
/// pinned (same degradation path as bypass reads).
pub static STORAGE_POOL_BYPASS_WRITES: Counter = Counter::new();
/// Pages handed back to the free list (DROP TABLE, rollback, orphan GC).
pub static STORAGE_PAGES_FREED: Counter = Counter::new();
/// Freed pages handed out again by the allocator instead of growing the
/// data file.
pub static STORAGE_PAGES_REUSED: Counter = Counter::new();
/// VACUUM runs completed (live chunks rewritten into a fresh file).
pub static STORAGE_VACUUM_RUNS: Counter = Counter::new();
/// Pages copied into the fresh data file across all VACUUM runs.
pub static STORAGE_VACUUM_PAGES_COPIED: Counter = Counter::new();
/// Bytes reclaimed by VACUUM (old file size minus rebuilt file size).
pub static STORAGE_VACUUM_BYTES_RECLAIMED: Counter = Counter::new();
/// Multi-statement transactions opened with BEGIN.
pub static STORAGE_TXN_BEGINS: Counter = Counter::new();
/// Multi-statement transactions ended with COMMIT.
pub static STORAGE_TXN_COMMITS: Counter = Counter::new();
/// Multi-statement transactions ended with ROLLBACK.
pub static STORAGE_TXN_ROLLBACKS: Counter = Counter::new();
/// Logical undo records applied while rolling back.
pub static STORAGE_TXN_UNDO_RECORDS: Counter = Counter::new();
/// Frames currently resident in the buffer pool (bounded by the
/// `buffer_pool_pages` knob — the scans-in-bounded-memory assertion).
pub static STORAGE_POOL_OCCUPANCY: Gauge = Gauge::new();
/// High-water mark of resident frames since process start.
pub static STORAGE_POOL_OCCUPANCY_PEAK: Gauge = Gauge::new();
/// Pages currently on the free list of the most recently opened
/// storage environment.
pub static STORAGE_FREE_PAGES: Gauge = Gauge::new();

// --- serve: concurrent inference server ----------------------------------

/// Requests rejected at admission (queue full).
pub static SERVE_REJECTED: Counter = Counter::new();
/// Requests completed with `ServeError::Timeout`.
pub static SERVE_TIMEOUTS: Counter = Counter::new();
/// Requests whose deadline had already passed at submit.
pub static SERVE_DEADLINE_MISSED_AT_SUBMIT: Counter = Counter::new();
/// Batches flushed because the flush deadline fired (vs. filling up).
pub static SERVE_FLUSH_DEADLINE_FIRES: Counter = Counter::new();
/// Inference panics caught and converted to `ServeError::Internal`.
pub static SERVE_PANICS_CAUGHT: Counter = Counter::new();
/// Poisoned locks recovered via `into_inner` after a caught panic.
pub static SERVE_LOCKS_RECOVERED: Counter = Counter::new();
/// Current depth of the admission queue.
pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new();
/// Rows per executed inference batch.
pub static SERVE_BATCH_ROWS: Histogram = Histogram::new();
/// End-to-end request latency, submit → completion, µs.
pub static SERVE_E2E_US: Histogram = Histogram::new();

// --- catalog walked by `crate::snapshot` ---------------------------------

pub static COUNTERS: &[(&str, &Counter)] = &[
    ("sched.tasks.serve", &SCHED_TASKS_SERVE),
    ("sched.tasks.query", &SCHED_TASKS_QUERY),
    ("sched.tasks.kernel", &SCHED_TASKS_KERNEL),
    ("sched.steals", &SCHED_STEALS),
    ("sched.parks", &SCHED_PARKS),
    ("sched.unparks", &SCHED_UNPARKS),
    ("sched.panics_caught", &SCHED_PANICS_CAUGHT),
    ("tensor.gemm.calls", &TENSOR_GEMM_CALLS),
    ("tensor.gemm.flops", &TENSOR_GEMM_FLOPS),
    ("tensor.gemm.i8.calls", &TENSOR_GEMM_I8_CALLS),
    ("tensor.gemm.i8.flops", &TENSOR_GEMM_I8_FLOPS),
    ("tensor.pool.jobs", &TENSOR_POOL_JOBS),
    ("exec.plan_cache.hits", &EXEC_PLAN_CACHE_HITS),
    ("exec.plan_cache.misses", &EXEC_PLAN_CACHE_MISSES),
    ("exec.plan_cache.invalidations", &EXEC_PLAN_CACHE_INVALIDATIONS),
    ("exec.catalog.epoch_bumps", &EXEC_CATALOG_EPOCH_BUMPS),
    ("modeljoin.build.count", &MODELJOIN_BUILD_COUNT),
    ("modeljoin.quant.builds", &MODELJOIN_QUANT_BUILDS),
    ("modeljoin.cache.hits", &MODELJOIN_CACHE_HITS),
    ("modeljoin.cache.misses", &MODELJOIN_CACHE_MISSES),
    ("modeljoin.cache.hits_i8", &MODELJOIN_CACHE_HITS_I8),
    ("modeljoin.cache.misses_i8", &MODELJOIN_CACHE_MISSES_I8),
    ("shard.queries.single", &SHARD_QUERIES_SINGLE),
    ("shard.queries.scatter", &SHARD_QUERIES_SCATTER),
    ("shard.queries.partial_agg", &SHARD_QUERIES_PARTIAL_AGG),
    ("shard.queries.shuffle", &SHARD_QUERIES_SHUFFLE),
    ("shard.shuffle.rows", &SHARD_SHUFFLE_ROWS),
    ("shard.shuffle.batches", &SHARD_SHUFFLE_BATCHES),
    ("shard.shuffle.bytes", &SHARD_SHUFFLE_BYTES),
    ("storage.pool.hits", &STORAGE_POOL_HITS),
    ("storage.pool.misses", &STORAGE_POOL_MISSES),
    ("storage.pool.evictions", &STORAGE_POOL_EVICTIONS),
    ("storage.pages.written", &STORAGE_PAGES_WRITTEN),
    ("storage.wal.appends", &STORAGE_WAL_APPENDS),
    ("storage.wal.fsyncs", &STORAGE_WAL_FSYNCS),
    ("storage.wal.bytes", &STORAGE_WAL_BYTES),
    ("storage.recovery.records_replayed", &STORAGE_RECOVERY_RECORDS_REPLAYED),
    ("storage.checkpoints", &STORAGE_CHECKPOINTS),
    ("storage.pool.bypass_reads", &STORAGE_POOL_BYPASS_READS),
    ("storage.pool.bypass_writes", &STORAGE_POOL_BYPASS_WRITES),
    ("storage.pages.freed", &STORAGE_PAGES_FREED),
    ("storage.pages.reused", &STORAGE_PAGES_REUSED),
    ("storage.vacuum.runs", &STORAGE_VACUUM_RUNS),
    ("storage.vacuum.pages_copied", &STORAGE_VACUUM_PAGES_COPIED),
    ("storage.vacuum.bytes_reclaimed", &STORAGE_VACUUM_BYTES_RECLAIMED),
    ("storage.txn.begins", &STORAGE_TXN_BEGINS),
    ("storage.txn.commits", &STORAGE_TXN_COMMITS),
    ("storage.txn.rollbacks", &STORAGE_TXN_ROLLBACKS),
    ("storage.txn.undo_records", &STORAGE_TXN_UNDO_RECORDS),
    ("serve.rejected", &SERVE_REJECTED),
    ("serve.timeouts", &SERVE_TIMEOUTS),
    ("serve.deadline.missed_at_submit", &SERVE_DEADLINE_MISSED_AT_SUBMIT),
    ("serve.flush.deadline_fires", &SERVE_FLUSH_DEADLINE_FIRES),
    ("serve.panics_caught", &SERVE_PANICS_CAUGHT),
    ("serve.locks_recovered", &SERVE_LOCKS_RECOVERED),
];

pub static GAUGES: &[(&str, &Gauge)] = &[
    ("sched.workers", &SCHED_WORKERS),
    ("sched.queue.depth", &SCHED_QUEUE_DEPTH),
    ("tensor.pool.workers", &TENSOR_POOL_WORKERS),
    ("serve.queue.depth", &SERVE_QUEUE_DEPTH),
    ("shard.count", &SHARD_COUNT),
    ("storage.pool.occupancy", &STORAGE_POOL_OCCUPANCY),
    ("storage.pool.occupancy_peak", &STORAGE_POOL_OCCUPANCY_PEAK),
    ("storage.free_pages", &STORAGE_FREE_PAGES),
];

pub static HISTOGRAMS: &[(&str, &Histogram)] = &[
    ("sched.queue.wait_us", &SCHED_QUEUE_WAIT_US),
    ("sched.task.serve.us", &SCHED_TASK_SERVE_US),
    ("sched.task.query.us", &SCHED_TASK_QUERY_US),
    ("sched.task.kernel.us", &SCHED_TASK_KERNEL_US),
    ("tensor.gemm.us", &TENSOR_GEMM_US),
    ("tensor.gemm.i8.us", &TENSOR_GEMM_I8_US),
    ("tensor.pack.us", &TENSOR_PACK_US),
    ("modeljoin.build.us", &MODELJOIN_BUILD_US),
    ("serve.batch.rows", &SERVE_BATCH_ROWS),
    ("serve.request.e2e_us", &SERVE_E2E_US),
    ("shard.rows.per_shard", &SHARD_ROWS_PER_SHARD),
    ("shard.gather.wait_us", &SHARD_GATHER_WAIT_US),
];

/// Stage entries are named by their `.rows` counter; snapshots derive the
/// sibling `.batches` and `.time_us` names via [`stage_batches_name`] /
/// [`stage_time_name`].
pub static STAGES: &[(&str, &StageMetrics)] = &[
    ("exec.scan.rows", &EXEC_SCAN),
    ("exec.filter.rows", &EXEC_FILTER),
    ("exec.project.rows", &EXEC_PROJECT),
    ("exec.join.rows", &EXEC_JOIN),
    ("exec.agg.rows", &EXEC_AGG),
    ("exec.sort.rows", &EXEC_SORT),
    ("exec.other.rows", &EXEC_OTHER),
    ("modeljoin.probe.rows", &MODELJOIN_PROBE),
];

/// `.batches` metric name for a stage base name (leaks nothing: the set
/// of bases is fixed, so the interned strings below cover them all).
pub fn stage_batches_name(base: &str) -> &'static str {
    match base {
        "exec.scan" => "exec.scan.batches",
        "exec.filter" => "exec.filter.batches",
        "exec.project" => "exec.project.batches",
        "exec.join" => "exec.join.batches",
        "exec.agg" => "exec.agg.batches",
        "exec.sort" => "exec.sort.batches",
        "exec.other" => "exec.other.batches",
        "modeljoin.probe" => "modeljoin.probe.batches",
        _ => "unknown.batches",
    }
}

/// `.time_us` metric name for a stage base name.
pub fn stage_time_name(base: &str) -> &'static str {
    match base {
        "exec.scan" => "exec.scan.time_us",
        "exec.filter" => "exec.filter.time_us",
        "exec.project" => "exec.project.time_us",
        "exec.join" => "exec.join.time_us",
        "exec.agg" => "exec.agg.time_us",
        "exec.sort" => "exec.sort.time_us",
        "exec.other" => "exec.other.time_us",
        "modeljoin.probe" => "modeljoin.probe.time_us",
        _ => "unknown.time_us",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = COUNTERS.iter().map(|(n, _)| *n).collect();
        names.extend(GAUGES.iter().map(|(n, _)| *n));
        names.extend(HISTOGRAMS.iter().map(|(n, _)| *n));
        for (n, _) in STAGES {
            let base = n.strip_suffix(".rows").expect("stage names end in .rows");
            names.push(n);
            names.push(stage_batches_name(base));
            names.push(stage_time_name(base));
        }
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name in catalog");
        assert!(!names.iter().any(|n| n.starts_with("unknown.")));
    }
}
