//! Lightweight, always-on observability for the in-database ML stack.
//!
//! The paper's argument rests on *measured* per-stage latency breakdowns
//! (build vs. probe vs. pack vs. BLAS, Sec. 5–6); this crate is the
//! substrate every runtime layer reports through. Three primitives, all
//! lock-free and process-global:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomics, always on. A counter
//!   increment is one `fetch_add`; there is no way (and no need) to turn
//!   them off.
//! * [`Histogram`] — fixed log2-scale buckets (64 of them, one per power
//!   of two) over `u64` samples, each bucket a relaxed atomic. Recording
//!   is a `leading_zeros` plus two `fetch_add`s; snapshots derive
//!   approximate quantiles from the bucket counts.
//! * [`span`] — a scoped timer recording its elapsed microseconds into a
//!   histogram on drop. Spans are the only primitive with measurable
//!   cost (two `Instant::now` calls), so they are gated by a global flag
//!   ([`set_spans_enabled`], wired to the engine's `obs_spans` knob); the
//!   disabled path is one relaxed load and no clock read.
//!
//! Every metric lives in the static catalog of [`metrics`] — plain
//! `static` items referenced directly by the instrumented crates, so
//! there is no registration machinery and no startup cost. [`snapshot`]
//! walks the catalog into a [`MetricsSnapshot`], which renders as a text
//! report ([`MetricsSnapshot::render`]) or as JSON for embedding in the
//! benchmark result files ([`MetricsSnapshot::render_json`]).
//!
//! Metrics are process-wide, not per-engine: tests assert on deltas, and
//! multi-engine processes (the benches) read one merged view — the same
//! trade DBMS-global counters make.

pub mod metrics;

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing event count. All operations are relaxed:
/// counters order nothing, they only tally.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// An instantaneous level (queue depth, pool size). Signed so transient
/// dips below a racy zero don't wrap.
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `b`
/// (1..=63) holds values in `[2^(b-1), 2^b)`, with the top bucket
/// absorbing everything at and above `2^62`.
pub const HIST_BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples with fixed log2-scale
/// buckets. Quantiles read from a snapshot are upper bounds of the
/// matching bucket — at most 2x off, which is plenty for latency
/// distributions spanning orders of magnitude.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (the unit of every `*_us` metric).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the bucket state (relaxed reads; exact
    /// under quiescence, approximate under concurrent recording).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Materialized histogram state with derived statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Approximate quantile `q` in [0, 1]: the upper bound of the first
    /// bucket whose cumulative count reaches `q * count`, clamped to the
    /// recorded maximum. 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Global span gate. Defaults to on; `Engine::new` stores the
/// `EngineConfig::obs_spans` knob here (process-wide — the last engine
/// constructed wins, which is what single-engine processes and the
/// benches want).
static SPANS_ENABLED: AtomicBool = AtomicBool::new(true);

pub fn set_spans_enabled(enabled: bool) {
    SPANS_ENABLED.store(enabled, Ordering::Relaxed);
}

#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// A scoped timer: created by [`span`], records the elapsed microseconds
/// into its histogram when dropped. When spans are disabled the guard is
/// inert — no clock is read on either end.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
}

/// Open a span over `hist`. One relaxed load when disabled.
#[inline]
pub fn span(hist: &'static Histogram) -> Span {
    let start = if spans_enabled() { Some(Instant::now()) } else { None };
    Span { hist, start }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

/// Per-stage metric bundle used by the executor and the ModelJoin probe
/// path: row and batch throughput plus an (inclusive) time histogram.
#[derive(Debug, Default)]
pub struct StageMetrics {
    pub rows: Counter,
    pub batches: Counter,
    pub time_us: Histogram,
}

impl StageMetrics {
    pub const fn new() -> StageMetrics {
        StageMetrics { rows: Counter::new(), batches: Counter::new(), time_us: Histogram::new() }
    }
}

/// A point-in-time copy of the whole metric catalog.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

/// Snapshot every metric in the catalog (see [`metrics`]).
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for &(name, c) in metrics::COUNTERS {
        snap.counters.push((name, c.get()));
    }
    for &(name, g) in metrics::GAUGES {
        snap.gauges.push((name, g.get()));
    }
    for &(name, h) in metrics::HISTOGRAMS {
        snap.histograms.push((name, h.snapshot()));
    }
    for &(name, s) in metrics::STAGES {
        snap.counters.push((name, s.rows.get()));
        // Stage names end in ".rows"; derive the sibling metric names.
        let base = name.strip_suffix(".rows").unwrap_or(name);
        snap.counters.push((metrics::stage_batches_name(base), s.batches.get()));
        snap.histograms.push((metrics::stage_time_name(base), s.time_us.snapshot()));
    }
    snap
}

impl MetricsSnapshot {
    /// Value of a counter by full name; 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge by full name; 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Histogram snapshot by full name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Human-readable report: one line per metric, histograms with
    /// count / mean / p50 / p99 / max. Zero-count metrics are included —
    /// an empty line is information too.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name} count={} mean={:.1} p50={} p99={} max={}\n",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            ));
        }
        out
    }

    /// The snapshot as a JSON object (counters, gauges, and summarized
    /// histograms), indented by `indent` for embedding in hand-rolled
    /// benchmark JSON. The repository vendors no serializer, so this is
    /// written by hand like the `BENCH_*.json` emitters.
    pub fn render_json(&self, indent: &str) -> String {
        let mut out = String::new();
        let field = |out: &mut String, items: Vec<String>, name: &str, last: bool| {
            out.push_str(&format!("{indent}  \"{name}\": {{\n"));
            for (i, item) in items.iter().enumerate() {
                let sep = if i + 1 < items.len() { "," } else { "" };
                out.push_str(&format!("{indent}    {item}{sep}\n"));
            }
            out.push_str(&format!("{indent}  }}{}\n", if last { "" } else { "," }));
        };
        out.push_str("{\n");
        field(
            &mut out,
            self.counters.iter().map(|(n, v)| format!("\"{n}\": {v}")).collect(),
            "counters",
            false,
        );
        field(
            &mut out,
            self.gauges.iter().map(|(n, v)| format!("\"{n}\": {v}")).collect(),
            "gauges",
            false,
        );
        field(
            &mut out,
            self.histograms
                .iter()
                .map(|(n, h)| {
                    format!(
                        "\"{n}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \
                         \"max\": {}}}",
                        h.count,
                        h.sum,
                        h.quantile(0.50),
                        h.quantile(0.99),
                        h.max
                    )
                })
                .collect(),
            "histograms",
            true,
        );
        out.push_str(&format!("{indent}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(3);
        c.add(2);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 5, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.0), 0);
        // p50 falls in the [4, 8) bucket of the three 5s: upper bound 7.
        assert_eq!(s.quantile(0.5), 7);
        // The top quantile is clamped to the true maximum.
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 1116.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.max, s.quantile(0.99)), (0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn span_records_only_when_enabled() {
        static H: Histogram = Histogram::new();
        let was = spans_enabled();
        set_spans_enabled(false);
        {
            let _s = span(&H);
        }
        assert_eq!(H.count(), 0, "disabled span must not record");
        set_spans_enabled(true);
        {
            let _s = span(&H);
        }
        assert_eq!(H.count(), 1);
        set_spans_enabled(was);
    }

    #[test]
    fn snapshot_renders_every_catalog_metric() {
        // Touch one metric of each kind so the report provably carries
        // real values, then check the renderers.
        metrics::TENSOR_GEMM_CALLS.add(1);
        metrics::SERVE_QUEUE_DEPTH.set(3);
        metrics::SERVE_BATCH_ROWS.record(8);
        metrics::EXEC_SCAN.rows.add(10);
        let snap = snapshot();
        assert!(snap.counter("tensor.gemm.calls") >= 1);
        assert!(snap.counter("exec.scan.rows") >= 10);
        assert!(snap.counter("exec.scan.batches") < u64::MAX);
        assert!(snap.histogram("exec.scan.time_us").is_some());
        assert!(snap.histogram("serve.batch.rows").is_some());

        let text = snap.render();
        let json = snap.render_json("");
        for (name, _) in &snap.counters {
            assert!(text.contains(name), "text report must list {name}");
            assert!(json.contains(name), "json report must list {name}");
        }
        assert!(text.contains("serve.queue.depth"));
        assert!(json.ends_with('}'));
    }
}
